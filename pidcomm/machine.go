package pidcomm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
)

// Machine is one simulated PIM-enabled DIMM system: the DIMM geometry,
// the virtual hypercube over its PEs, the timing model, the shared
// elapsed-time timeline and the machine-wide compiled-plan caches.
// Sessions (Comm) are created with NewTenant or the whole-machine
// convenience Comm; all sessions share the machine's scheduler and
// timeline, so a Machine is the unit of capacity while a Comm is the
// unit of isolation.
type Machine struct {
	sys      *dram.System
	hc       *core.Hypercube
	cc       *core.Comm
	costOnly bool
}

// machineConfig collects NewMachine options.
type machineConfig struct {
	params    cost.Params
	costOnly  bool
	fuse      core.FuseLevel
	workers   int
	sched     SchedPolicy
	stepped   bool
	lookahead int
}

// MachineOption configures NewMachine.
type MachineOption func(*machineConfig)

// WithParams overrides the calibrated timing model.
func WithParams(p Params) MachineOption {
	return func(mc *machineConfig) { mc.params = p }
}

// CostOnly builds the machine on the cost-only backend over a phantom
// (no-MRAM) system: every collective charges exactly what the
// functional machine would — breakdowns are bit-identical — but no
// bytes exist or move, making paper-scale capacity studies orders of
// magnitude cheaper. Rooted primitives return nil result buffers and
// SetPEBuffer/GetPEBuffer panic.
func CostOnly() MachineOption {
	return func(mc *machineConfig) { mc.costOnly = true }
}

// WithFuse sets the machine's schedule-fusion level (default FuseFull).
// FuseOff compiles every plan exactly as lowered — bit-identical to the
// pre-fusion engine; FuseFull runs the peephole passes, which is what
// makes CompileSequence plans collapse their interior synchronizations,
// cancel inverse rotate/unrotate pairs across member boundaries, and
// stream back-to-back epochs as one.
func WithFuse(f FuseLevel) MachineOption {
	return func(mc *machineConfig) { mc.fuse = f }
}

// WithExecWorkers sets the functional backend's worker-pool size: how
// many OS threads each collective's data movement is sharded across
// (default GOMAXPROCS; n <= 0 keeps the default). Purely a
// simulator-throughput knob — results, breakdowns, and bus statistics
// are bit-identical at every setting — and not part of the plan-cache
// key, so it can also be changed later with Machine.SetExecWorkers.
func WithExecWorkers(n int) MachineOption {
	return func(mc *machineConfig) { mc.workers = n }
}

// WithSched selects the machine's submission scheduling policy at
// construction: SchedWFQ (weighted-fair, the default), SchedEDF
// (earliest-deadline-first), SchedFIFO (global submission order) or
// SchedLookahead (makespan-aware reordering). Use ParseSchedPolicy to
// map names to values. Machine.SetSched switches the policy later at
// runtime.
func WithSched(p SchedPolicy) MachineOption {
	return func(mc *machineConfig) { mc.sched = p }
}

// WithStepped builds the machine in stepped serving mode: Submit only
// enqueues and the caller drives execution one plan at a time with
// Machine.Step — the deterministic substrate of the open-loop serving
// driver (internal/serve).
func WithStepped(on bool) MachineOption {
	return func(mc *machineConfig) { mc.stepped = on }
}

// WithLookahead sets the candidate window of the window-scanning
// scheduling policies (SchedEDF, SchedLookahead): how deep into each
// bucket hazard-free plans are considered at each pick. Default
// DefaultLookahead; must be in [1, MaxPendingPlans].
func WithLookahead(k int) MachineOption {
	return func(mc *machineConfig) { mc.lookahead = k }
}

// NewMachine builds a simulated machine with the given DIMM geometry
// and virtual-hypercube shape (every dimension a power of two except
// the last; product equal to the PE count).
func NewMachine(geo Geometry, shape []int, opts ...MachineOption) (*Machine, error) {
	mc := machineConfig{params: cost.DefaultParams()}
	for _, o := range opts {
		o(&mc)
	}
	if err := mc.params.Validate(); err != nil {
		return nil, err
	}
	var (
		sys *dram.System
		err error
	)
	if mc.costOnly {
		sys, err = dram.NewPhantomSystem(geo)
	} else {
		sys, err = dram.NewSystem(geo)
	}
	if err != nil {
		return nil, err
	}
	hc, err := core.NewHypercube(sys, shape)
	if err != nil {
		return nil, err
	}
	m := &Machine{sys: sys, hc: hc, costOnly: mc.costOnly}
	if mc.costOnly {
		m.cc = core.NewCostComm(hc, mc.params)
	} else {
		m.cc = core.NewComm(hc, mc.params)
	}
	m.cc.SetFuse(mc.fuse)
	if mc.workers > 0 {
		m.cc.SetExecWorkers(mc.workers)
	}
	m.cc.SetSched(mc.sched)
	if mc.stepped {
		m.cc.SetStepped(true)
	}
	if mc.lookahead != 0 {
		if err := m.cc.SetLookahead(mc.lookahead); err != nil {
			return nil, fmt.Errorf("pidcomm: %w", err)
		}
	}
	return m, nil
}

// SetExecWorkers resizes the functional backend's worker pool for every
// session on the machine (0 restores the GOMAXPROCS default). Safe to
// call between collectives; never changes results.
func (m *Machine) SetExecWorkers(n int) { m.cc.SetExecWorkers(n) }

// ExecWorkers returns the worker-pool size collectives execute with.
func (m *Machine) ExecWorkers() int { return m.cc.ExecWorkers() }

// TenantConfig describes one session on a shared machine.
type TenantConfig struct {
	// Name labels the tenant in diagnostics and `pidinfo -tenants`.
	Name string
	// ArenaBytes is the per-PE MRAM window carved for the tenant
	// (rounded up to the 8-byte bank-burst granule). Every Region the
	// tenant names is validated against [0, ArenaBytes).
	ArenaBytes int
	// Weight is the tenant's share in the weighted-fair submission
	// scheduler; 0 means 1.
	Weight float64
	// Quota, if positive, bounds the total simulated time the tenant
	// may admit; a Run/Submit whose predicted cost would exceed it
	// fails with ErrQuotaExceeded.
	Quota Seconds
	// MaxPending, if positive, bounds the tenant's in-flight
	// submissions: beyond it, submissions shed per the Shed policy with
	// ErrOverloaded instead of queuing without bound — the serving
	// path's admission control.
	MaxPending int
	// Shed selects what an overloaded tenant drops: the incoming
	// submission (ShedReject, the default) or its oldest queued plan
	// (ShedOldest).
	Shed ShedPolicy
}

// NewTenant carves a fresh disjoint MRAM arena of cfg.ArenaBytes per PE
// and returns the session bound to it. Arenas come first-fit from the
// machine's free-list allocator (CloseTenant returns them); NewTenant
// fails when no contiguous free window can fit the request.
func (m *Machine) NewTenant(cfg TenantConfig) (*Comm, error) {
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("tenant-%d", len(m.cc.Tenants()))
	}
	if cfg.Weight < 0 {
		return nil, fmt.Errorf("pidcomm: tenant %q weight %v must be positive", name, cfg.Weight)
	}
	if cfg.Quota < 0 {
		return nil, fmt.Errorf("pidcomm: tenant %q quota %v must be non-negative", name, cfg.Quota)
	}
	ar, err := m.sys.CarveArena(cfg.ArenaBytes)
	if err != nil {
		return nil, fmt.Errorf("pidcomm: tenant %q: %w", name, err)
	}
	t, err := m.cc.NewTenantCfg(core.TenantConfig{
		Name: name, Base: ar.Base, Bytes: ar.Bytes,
		Weight: cfg.Weight, Quota: cfg.Quota,
		MaxPending: cfg.MaxPending, Shed: cfg.Shed,
	})
	if err != nil {
		// Return the carved window so a failed registration does not
		// consume MRAM.
		if ferr := m.sys.FreeArena(ar); ferr != nil {
			return nil, fmt.Errorf("pidcomm: %w (and un-carving the arena failed: %v)", err, ferr)
		}
		return nil, fmt.Errorf("pidcomm: %w", err)
	}
	return &Comm{t: t, m: m}, nil
}

// CloseTenant retires a session at runtime — the teardown half of
// tenant churn. It drains the machine, rejects the session's later
// Run/Submit calls with ErrTenantClosed, evicts its cached plans, and
// returns its MRAM arena to the machine's coalescing free-list
// allocator, where it merges with adjacent free windows and becomes
// available to future NewTenant calls. The tenant's meter survives
// (RetiredTenants, Breakdown), so machine-total accounting stays
// bit-identical across create/teardown cycles. Closing a session twice
// returns ErrTenantClosed.
func (m *Machine) CloseTenant(c *Comm) error {
	base, bytes := c.t.Arena()
	if err := c.t.Close(); err != nil {
		return fmt.Errorf("pidcomm: %w", err)
	}
	if err := m.sys.FreeArena(dram.Arena{Base: base, Bytes: bytes}); err != nil {
		return fmt.Errorf("pidcomm: closing tenant %q: %w", c.t.Name(), err)
	}
	return nil
}

// Comm returns a whole-machine session: a tenant named "machine"
// covering the largest contiguous free MRAM window. It is the
// single-workload convenience — quickstart-style programs call it once
// and never think about tenancy — and composes with NewTenant only in
// the natural order (carve the tenants first; Comm takes the rest).
func (m *Machine) Comm() (*Comm, error) {
	free := m.sys.LargestFree()
	if free <= 0 {
		return nil, fmt.Errorf("pidcomm: no MRAM left to bind a whole-machine session")
	}
	return m.NewTenant(TenantConfig{Name: "machine", ArenaBytes: free})
}

// CostOnly reports whether the machine runs the cost-only backend.
func (m *Machine) CostOnly() bool { return m.costOnly }

// Shape returns the hypercube shape.
func (m *Machine) Shape() []int { return m.hc.Shape() }

// NumPEs returns the machine's PE count.
func (m *Machine) NumPEs() int { return m.sys.Geometry().NumPEs() }

// MramPerBank returns the per-PE MRAM capacity in bytes.
func (m *Machine) MramPerBank() int { return m.sys.MramSize() }

// FreeArenaBytes returns the total per-PE MRAM not currently carved
// into arenas. After churn the free bytes may be split across windows:
// LargestFreeArena bounds the biggest single tenant that still fits.
func (m *Machine) FreeArenaBytes() int { return m.sys.MramSize() - m.sys.CarvedBytes() }

// LargestFreeArena returns the largest contiguous free MRAM window —
// the biggest ArenaBytes a NewTenant call can currently satisfy.
func (m *Machine) LargestFreeArena() int { return m.sys.LargestFree() }

// FreeArenaSpans returns the allocator's free windows as (base, bytes)
// pairs, sorted by base and maximally coalesced.
func (m *Machine) FreeArenaSpans() []dram.Arena { return m.sys.FreeSpans() }

// Groups returns the communication groups (PE lists in rank order) the
// dims selection produces — the cube slices of § IV-B2.
func (m *Machine) Groups(dims string) ([][]int, error) { return m.hc.Groups(dims) }

// Breakdown returns the machine-wide attributed cost: the per-category
// sum of every tenant's meter — live and retired, so closing a tenant
// never loses its history — folded in retirement-then-creation order.
// By construction it equals the sum of the per-tenant meters bit for
// bit; the tenant-isolation tests additionally pin each tenant's meter
// to a solo run of the same workload, across churn.
func (m *Machine) Breakdown() Breakdown {
	var b Breakdown
	for _, t := range m.cc.RetiredTenants() {
		b = b.Add(t.Meter().Snapshot())
	}
	for _, t := range m.cc.Tenants() {
		b = b.Add(t.Meter().Snapshot())
	}
	return b
}

// SetAutoObjective configures what Auto resolution on this machine
// minimizes: the meter total (AutoMeter, the default — serial cost) or
// the pipelined dry-placed makespan (AutoMakespan — overlapped elapsed
// time, the right objective for async submission bursts). Cached Auto
// decisions are dropped on a change.
func (m *Machine) SetAutoObjective(o AutoObjective) { m.cc.SetAutoObjective(o) }

// AutoObjective returns the machine's current Auto objective.
func (m *Machine) AutoObjective() AutoObjective { return m.cc.AutoObjective() }

// AutoDecisions returns a snapshot of the machine's cached Auto
// decisions, sorted for stable display (`pidinfo -auto` renders the
// same table on a representative comm).
func (m *Machine) AutoDecisions() []AutoDecision { return m.cc.AutoDecisions() }

// SetSched switches the machine's submission scheduling policy at
// runtime: SchedWFQ (weighted-fair, the default), SchedEDF
// (earliest-deadline-first), SchedFIFO (global submission order) or
// SchedLookahead (makespan-aware reordering). Safe to call between
// submissions — bucket virtual times advance identically under every
// policy, so switching resumes fair.
//
// Deprecated: configure the initial policy with the WithSched option at
// construction; SetSched remains for switching policies at runtime.
func (m *Machine) SetSched(p SchedPolicy) { m.cc.SetSched(p) }

// Sched returns the machine's submission scheduling policy.
func (m *Machine) Sched() SchedPolicy { return m.cc.Sched() }

// SetStepped switches the machine into stepped serving mode: Submit
// only enqueues and the caller drives execution one plan at a time with
// Step — the deterministic substrate of the open-loop serving driver
// (internal/serve). Flip it only while nothing is in flight.
//
// Deprecated: build stepped machines with the WithStepped option at
// construction; SetStepped remains for toggling the mode at runtime
// (only while nothing is in flight).
func (m *Machine) SetStepped(on bool) { m.cc.SetStepped(on) }

// SetLookahead sets the candidate window of the window-scanning
// scheduling policies at runtime (see WithLookahead). k must be in
// [1, MaxPendingPlans].
func (m *Machine) SetLookahead(k int) error { return m.cc.SetLookahead(k) }

// Lookahead returns the effective candidate window depth.
func (m *Machine) Lookahead() int { return m.cc.Lookahead() }

// Step pops the next queued plan under the scheduling policy and
// executes it synchronously, returning its completed future (nil when
// the queue is empty or a background worker owns it). Only meaningful
// in stepped mode.
func (m *Machine) Step() *Future { return m.cc.Step() }

// Pending returns the number of submitted plans not yet completed.
func (m *Machine) Pending() int { return m.cc.Pending() }

// Elapsed returns the overlap-aware simulated elapsed time of
// everything executed on the machine: serial runs append, submitted
// plans with disjoint footprints overlap. The makespan of the shared
// timeline.
func (m *Machine) Elapsed() Seconds { return m.cc.Elapsed() }

// Flush blocks until every plan submitted by any tenant has completed,
// then closes the overlap window (the machine-wide barrier).
func (m *Machine) Flush() { m.cc.Flush() }

// NetBusy returns the cumulative simulated time this machine's network
// lane has been busy: the inter-host legs of cluster collectives
// charged to this host. Zero on a machine that never joined a cluster.
func (m *Machine) NetBusy() Seconds { return m.cc.LaneBusy(cost.LaneNet) }

// PlanCacheStats returns the machine-wide compiled-plan cache counters
// and memory accounting.
func (m *Machine) PlanCacheStats() PlanCacheStats { return m.cc.PlanCacheStats() }

// Fuse returns the machine's schedule-fusion level.
func (m *Machine) Fuse() FuseLevel { return m.cc.Fuse() }

// FusionStats returns the aggregate fusion activity of every plan
// compiled on the machine (cumulative over its lifetime).
func (m *Machine) FusionStats() FusionStats { return m.cc.FusionStats() }

// TenantInfo is one row of the machine's tenant listing.
type TenantInfo struct {
	// Name is the tenant's label.
	Name string
	// ArenaBase and ArenaBytes locate the tenant's per-PE MRAM window.
	ArenaBase, ArenaBytes int
	// Weight is the weighted-fair scheduler share.
	Weight float64
	// Quota is the simulated-time budget (0 = unlimited); Admitted is
	// the predicted time admitted against it so far.
	Quota, Admitted Seconds
	// MaxPending is the in-flight bound (0 = unlimited); Pending is the
	// current in-flight count; Shed is the overload policy.
	MaxPending, Pending int
	Shed                ShedPolicy
	// Closed marks a retired tenant (RetiredTenants rows only).
	Closed bool
	// Meter is the tenant's attributed cost so far.
	Meter Breakdown
}

func tenantInfo(t *core.Tenant) TenantInfo {
	base, bytes := t.Arena()
	return TenantInfo{
		Name:      t.Name(),
		ArenaBase: base, ArenaBytes: bytes,
		Weight: t.Weight(),
		Quota:  t.Quota(), Admitted: t.Admitted(),
		MaxPending: t.MaxPending(), Pending: t.Pending(),
		Shed:   t.Shed(),
		Closed: t.Closed(),
		Meter:  t.Meter().Snapshot(),
	}
}

// Tenants lists every live session on the machine in creation order.
func (m *Machine) Tenants() []TenantInfo {
	ts := m.cc.Tenants()
	out := make([]TenantInfo, len(ts))
	for i, t := range ts {
		out[i] = tenantInfo(t)
	}
	return out
}

// RetiredTenants lists the closed sessions in closing order; their
// arenas are back in the free pool but their meters persist.
func (m *Machine) RetiredTenants() []TenantInfo {
	ts := m.cc.RetiredTenants()
	out := make([]TenantInfo, len(ts))
	for i, t := range ts {
		out[i] = tenantInfo(t)
	}
	return out
}

// Comm is one session on a Machine: a tenant bound to a disjoint
// per-PE MRAM arena, with its own meter, scheduler weight and optional
// quota. The Collective descriptor is the only collective entry path —
// Run executes one-shot, Compile returns a replayable CompiledPlan,
// Submit enqueues asynchronously — and every Region in a descriptor is
// arena-relative, so a session cannot name MRAM outside its window.
//
// A Comm is safe for concurrent use; executions serialize on the shared
// machine while the elapsed-time timeline overlaps independent plans.
type Comm struct {
	t *core.Tenant
	m *Machine
}

// Run compiles (or fetches the cached plan for) d and executes one
// replay, returning the run's cost breakdown. Rooted primitives
// (Gather, Reduce) leave their results on the plan: use Compile and
// CompiledPlan.Results to read them.
func (c *Comm) Run(d Collective) (Breakdown, error) { return c.t.Run(d) }

// Compile compiles d — validation, Auto resolution, lowering to
// schedule IR, charge precomputation — into a CompiledPlan ready for
// repeated Run/Submit:
//
//	plan, _ := comm.Compile(pidcomm.Collective{...})
//	for layer := 0; layer < L; layer++ {
//	    bd, _ := plan.Run() // identical cost/result to a one-shot Run
//	}
//
// Repeated one-shot Runs of an equal descriptor hit the same cache, so
// they amortize too.
func (c *Comm) Compile(d Collective) (*CompiledPlan, error) { return c.t.Compile(d) }

// CompileSequence compiles ds as one fused multi-collective plan: the
// members lower in order into a single schedule, and the machine's
// fusion passes rewrite across the member boundaries — interior
// synchronizations collapse, inverse rotate/unrotate pairs cancel,
// back-to-back transfer epochs coalesce — so an iterative pipeline
// (e.g. DLRM's per-batch ReduceScatter→AlltoAll) replays as one denser
// plan. Functionally byte-identical to running the members serially;
// CompiledPlan.FusionReport quotes the saving. Rooted primitives
// (Gather, Reduce) cannot join a sequence.
func (c *Comm) CompileSequence(ds ...Collective) (*CompiledPlan, error) {
	return c.t.CompileSequence(ds...)
}

// Submit compiles (or fetches the cached plan for) d, enqueues one
// asynchronous execution on the session's weighted-fair bucket and
// returns its Future. Plans of one session execute in submission order;
// plans with data hazards (RAW/WAR/WAW on a region) are ordered, and
// independent plans — always including other tenants' plans, whose
// arenas are disjoint — overlap on the shared elapsed-time timeline.
func (c *Comm) Submit(d Collective) (*Future, error) { return c.t.Submit(d) }

// SubmitOpts is Submit with explicit serving attributes: a simulated
// arrival time the placement may not precede (NotBefore) and an
// absolute deadline the EDF policy schedules against (Deadline). An
// admission rejection (quota, overload, closed tenant) returns an
// already-completed Future carrying the error, with a zero Window.
func (c *Comm) SubmitOpts(d Collective, o SubmitOptions) (*Future, error) {
	cp, err := c.t.Compile(d)
	if err != nil {
		return nil, err
	}
	return cp.SubmitOpts(o), nil
}

// Close retires the session and returns its arena to the machine's
// free-list allocator (Machine.CloseTenant).
func (c *Comm) Close() error { return c.m.CloseTenant(c) }

// Closed reports whether the session has been retired.
func (c *Comm) Closed() bool { return c.t.Closed() }

// Pending returns the session's submitted-but-uncompleted plan count.
func (c *Comm) Pending() int { return c.t.Pending() }

// AutoLevel returns the concrete level the Auto pseudo-level resolves
// to for descriptor d (whatever d.Level says).
func (c *Comm) AutoLevel(d Collective) (Level, error) { return c.t.AutoLevelOf(d) }

// AutoResolve returns the (algorithm, level) pair descriptor d resolves
// to: the autotuner's pick (under the machine's Auto objective) where
// either axis is Auto, the explicit selection otherwise. Exactly what
// Compile would resolve d to, without compiling anything.
func (c *Comm) AutoResolve(d Collective) (Algorithm, Level, error) { return c.t.AutoResolveOf(d) }

// SetPEBuffer writes raw bytes directly into the session's arena of a
// PE's MRAM (no cost): test/application setup representing data the PE
// itself produced. off is arena-relative. Call Flush first if
// submissions may be in flight.
func (c *Comm) SetPEBuffer(pe, off int, data []byte) { c.t.SetPEBuffer(pe, off, data) }

// GetPEBuffer reads raw bytes directly from the session's arena of a
// PE's MRAM (no cost). off is arena-relative.
func (c *Comm) GetPEBuffer(pe, off, n int) []byte { return c.t.GetPEBuffer(pe, off, n) }

// Meter returns the session's attributed cost so far: exactly the
// charges of this session's plans, bit-identical to running the same
// workload alone on its own machine.
func (c *Comm) Meter() Breakdown { return c.t.Meter().Snapshot() }

// Flush blocks until every plan submitted on the shared machine has
// completed — the barrier before touching MRAM directly while
// submissions may be in flight.
func (c *Comm) Flush() { c.t.Flush() }

// Elapsed returns the shared machine's overlap-aware elapsed time.
func (c *Comm) Elapsed() Seconds { return c.t.Elapsed() }

// Name returns the session's tenant name.
func (c *Comm) Name() string { return c.t.Name() }

// Arena returns the session's per-PE MRAM window as (base, bytes).
func (c *Comm) Arena() (base, bytes int) { return c.t.Arena() }

// Weight returns the session's weighted-fair scheduler share.
func (c *Comm) Weight() float64 { return c.t.Weight() }

// Quota returns the session's simulated-time budget (0 = unlimited).
func (c *Comm) Quota() Seconds { return c.t.Quota() }

// Admitted returns the predicted simulated time admitted so far.
func (c *Comm) Admitted() Seconds { return c.t.Admitted() }
