// Package pidcomm is the public API of the PID-Comm reproduction: a fast
// and flexible collective communication framework for (simulated)
// commodity processing-in-DIMM devices, after Noh, Hong et al., ISCA 2024.
//
// PID-Comm abstracts the PEs of a PIM-enabled DIMM system as a virtual
// hypercube and provides eight multi-instance collective communication
// primitives over user-selected dimensions, each in a conventional
// host-mediated version and in PID-Comm's optimized version (PE-assisted
// reordering, in-register modulation, cross-domain modulation).
//
// # Machines, tenants and the Collective descriptor
//
// A Machine owns one simulated system: the DIMM geometry, the virtual
// hypercube over its PEs, the calibrated timing model, the shared
// three-lane elapsed-time timeline and the compiled-plan caches.
// Sessions on the machine are Comms, created with NewTenant (or the
// whole-machine convenience Comm): each tenant is bound to a disjoint
// per-PE MRAM arena, meters its own costs, and competes for the machine
// under a weighted-fair scheduler.
//
// Every collective is described by one Collective value and consumed by
// exactly three entry points — Run (one-shot), Compile (plan once,
// replay many times) and Submit (asynchronous):
//
//	mach, _ := pidcomm.NewMachine(pidcomm.PaperSystem(1<<20), []int{32, 32})
//	comm, _ := mach.Comm()
//	// ... place per-PE data with comm.SetPEBuffer ...
//	bd, _ := comm.Run(pidcomm.Collective{
//	    Prim: pidcomm.ReduceScatter, Dims: "01",
//	    Src:  pidcomm.Span(srcOff, bytesPerPE), Dst: pidcomm.At(dstOff),
//	    Elem: pidcomm.I32, Op: pidcomm.Sum, Level: pidcomm.CM,
//	})
//	fmt.Println("simulated time:", bd.Total())
//
// The zero value of every optional Collective field is a sensible
// default: Level zero is Auto (the autotuner picks the cheapest
// applicable level) and a destination Region with zero Bytes takes the
// size the primitive implies.
//
// # Multi-tenant serving
//
// Several models can share one simulated machine: each NewTenant call
// carves a disjoint MRAM arena and returns an isolated session. All
// region handles are arena-relative — a tenant cannot even name MRAM
// outside its window. Submitted plans from all tenants are placed on
// the shared timeline by a weighted-fair scheduler, and per-tenant
// meters sum bit-identically to the machine total:
//
//	mach, _ := pidcomm.NewMachine(pidcomm.PaperSystem(64<<20), []int{32, 32})
//	a, _ := mach.NewTenant(pidcomm.TenantConfig{Name: "dlrm", ArenaBytes: 32 << 20, Weight: 2})
//	b, _ := mach.NewTenant(pidcomm.TenantConfig{Name: "gnn", ArenaBytes: 16 << 20, Weight: 1})
//	fa, _ := a.Submit(...)  // overlaps with b's plans on the timeline
//	fb, _ := b.Submit(...)
//
// The heavy lifting lives in internal/core (collectives), internal/dram,
// internal/dpu, internal/host (the PIM-DIMM substrate) and internal/cost
// (the calibrated timing model); this package re-exports the stable
// surface.
package pidcomm

import (
	_ "repro/internal/algo" // register the alternative collective lowerings
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// Re-exported element types (§ V-C).
const (
	I8  = elem.I8
	I16 = elem.I16
	I32 = elem.I32
	I64 = elem.I64
)

// Re-exported reduction operators.
const (
	Sum = elem.Sum
	Min = elem.Min
	Max = elem.Max
	Or  = elem.Or
	And = elem.And
	Xor = elem.Xor
)

// Re-exported optimization levels (§ V-A). Auto is the autotuner
// pseudo-level and the Level zero value: a Collective that leaves Level
// unset dry-runs every applicable level on the cost-only backend, picks
// the cheapest for the call signature, caches the decision and executes
// with it (see Comm.AutoLevel).
const (
	Auto     = core.Auto
	Baseline = core.Baseline
	PR       = core.PR
	IM       = core.IM
	CM       = core.CM
)

// Algorithm names one schedule-IR producer in the algorithm registry
// (internal/algo). The zero value AlgoAuto lets the autotuner search the
// registered algorithms alongside the levels; AlgoReference pins the
// built-in staged lowering; the named alternatives (ring, tree,
// Rabenseifner-style reduce-scatter+all-gather) are byte-identical to
// the reference and differ only in where their simulated time goes.
type Algorithm = core.Algorithm

// Re-exported algorithm identifiers.
const (
	AlgoAuto         = core.AlgoAuto
	AlgoReference    = core.AlgoReference
	AlgoRing         = core.AlgoRing
	AlgoTree         = core.AlgoTree
	AlgoRabenseifner = core.AlgoRabenseifner
)

// ParseAlgorithm parses an algorithm name ("Auto", "ref", "ring",
// "tree", "rsag") as printed by Algorithm.String.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// AutoObjective selects what Auto resolution minimizes
// (Comm.SetAutoObjective): the meter total (serial cost, the default)
// or the pipelined dry-placed makespan (overlapped elapsed time — the
// right objective for async submission bursts).
type AutoObjective = core.AutoObjective

// Re-exported Auto objectives.
const (
	AutoMeter    = core.AutoMeter
	AutoMakespan = core.AutoMakespan
)

// AutoDecision is one row of a comm's cached Auto decisions
// (Comm.AutoDecisions; `pidinfo -auto`).
type AutoDecision = core.AutoDecision

// Primitive identifies one of the eight collectives.
type Primitive = core.Primitive

// Re-exported primitive identifiers.
const (
	AlltoAll      = core.AlltoAll
	ReduceScatter = core.ReduceScatter
	AllReduce     = core.AllReduce
	AllGather     = core.AllGather
	Scatter       = core.Scatter
	Gather        = core.Gather
	Reduce        = core.Reduce
	Broadcast     = core.Broadcast
)

// Collective describes one collective call: primitive, dimensions,
// arena-relative Region handles, element type/operator for the reducing
// primitives, optimization level (zero = Auto) and host payloads for
// Scatter/Broadcast. See core.Collective for the per-primitive field
// table.
type Collective = core.Collective

// FuseLevel selects how compilation post-processes lowered schedules
// with the peephole fusion passes (merge adjacent rotations, coalesce
// transfer epochs, cancel inverse rotate/unrotate pairs, drop no-ops and
// interior synchronizations). The default is FuseFull; pass
// WithFuse(FuseOff) to NewMachine for schedules that execute exactly as
// lowered.
type FuseLevel = core.FuseLevel

// Re-exported fusion levels.
const (
	FuseDefault = core.FuseDefault
	FuseOff     = core.FuseOff
	FuseFull    = core.FuseFull
)

// FusionReport describes what the fusion pipeline did to one compiled
// plan (CompiledPlan.FusionReport): step counts, per-pass rewrite
// counters, the per-PE rotation work removed, and the plan's cost before
// and after fusion.
type FusionReport = core.FusionReport

// FusionStats aggregates fusion activity over a machine's lifetime
// (Machine.FusionStats; `pidinfo -plancache`).
type FusionStats = core.FusionStats

// Region is an arena-relative per-PE MRAM byte range [Off, Off+Bytes).
// Leave Bytes zero where the primitive implies the size.
type Region = core.Region

// At returns a Region at off whose size the primitive implies.
func At(off int) Region { return core.At(off) }

// Span returns the fully specified Region [off, off+bytes).
func Span(off, bytes int) Region { return core.Span(off, bytes) }

// Geometry describes the simulated DIMM system.
type Geometry = dram.Geometry

// Breakdown is a per-category simulated-time snapshot.
type Breakdown = cost.Breakdown

// Seconds is simulated wall-clock time.
type Seconds = cost.Seconds

// Params is the hardware timing model.
type Params = cost.Params

// Level selects how much of the optimization stack a collective uses.
type Level = core.Level

// ElemType is an element data type.
type ElemType = elem.Type

// ReduceOp is a reduction operator.
type ReduceOp = elem.Op

// CompiledPlan is a collective compiled once — validated, Auto-resolved,
// lowered to schedule IR, charges precomputed — for repeated Run or
// Submit calls. Obtain one from Comm.Compile; plans are owned by the
// session that compiled them (runs are admitted against its quota and
// metered on its meter).
type CompiledPlan = core.CompiledPlan

// Future is the handle of one asynchronously submitted plan execution;
// see Comm.Submit and CompiledPlan.Submit. Wait/Err/Cost/Results/Window
// block until the execution completes; Done polls.
type Future = core.Future

// PlanCacheStats reports the machine-wide compiled-plan cache's hit/miss
// counters and memory accounting (Machine.PlanCacheStats;
// `pidinfo -plancache`).
type PlanCacheStats = core.PlanCacheStats

// ErrQuotaExceeded is wrapped by Run/Submit errors of a tenant whose
// simulated-time quota cannot cover the next plan.
var ErrQuotaExceeded = core.ErrQuotaExceeded

// ErrOverloaded is wrapped by the error of a Future shed under per-
// tenant overload admission (TenantConfig.MaxPending + ShedPolicy).
var ErrOverloaded = core.ErrOverloaded

// ErrTenantClosed is wrapped by Run/Submit errors of a session retired
// with Machine.CloseTenant, and by a double close.
var ErrTenantClosed = core.ErrTenantClosed

// SubmitOptions carries the serving attributes of one submission:
// simulated arrival time (NotBefore) and absolute deadline (Deadline).
type SubmitOptions = core.SubmitOptions

// SchedPolicy selects how the machine picks the next queued plan
// (WithSched / Machine.SetSched). Every value resolves through the
// scheduler registry; ParseSchedPolicy maps names to values.
type SchedPolicy = core.SchedPolicy

// Re-exported scheduling policies: weighted-fair queuing (default),
// earliest-deadline-first over hazard-free candidates, global
// submission order, and makespan-aware lookahead reordering.
const (
	SchedWFQ       = core.SchedWFQ
	SchedEDF       = core.SchedEDF
	SchedFIFO      = core.SchedFIFO
	SchedLookahead = core.SchedLookahead
)

// ParseSchedPolicy parses a scheduling policy name as printed by
// SchedPolicy.String ("wfq", "edf", "fifo", "lookahead") — the
// name-based selection `pidbench -sched` and `pidinfo -sched` use.
func ParseSchedPolicy(s string) (SchedPolicy, error) { return core.ParseSchedPolicy(s) }

// SchedPolicies returns the registered scheduling policies in value
// order.
func SchedPolicies() []SchedPolicy { return core.SchedPolicies() }

// DefaultLookahead is the default candidate window depth of the
// window-scanning scheduling policies (WithLookahead overrides it).
const DefaultLookahead = core.DefaultLookahead

// ShedPolicy selects what an overloaded tenant drops
// (TenantConfig.Shed).
type ShedPolicy = core.ShedPolicy

// Re-exported shed policies: reject the incoming submission, or drop
// the oldest queued plan in its favor.
const (
	ShedReject = core.ShedReject
	ShedOldest = core.ShedOldest
)

// MaxPendingPlans bounds a machine's submission queue; Submit blocks
// once this many plans are in flight.
const MaxPendingPlans = core.MaxPendingPlans

// DefaultParams returns the calibrated timing parameters (DESIGN.md § 4).
func DefaultParams() Params { return cost.DefaultParams() }

// PaperSystem returns the paper's testbed geometry — 4 channels x 4 ranks
// x 8 chips x 8 banks = 1024 PEs — with the given per-bank MRAM bytes.
func PaperSystem(mramPerBank int) Geometry { return dram.PaperGeometry(mramPerBank) }

// DimsString builds a comm-dimensions bitmap, e.g. DimsString(3, 0, 2) ==
// "101" selecting the x and z axes of a 3-D hypercube.
func DimsString(numDims int, selected ...int) string {
	return core.DimsString(numDims, selected...)
}
