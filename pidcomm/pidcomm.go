// Package pidcomm is the public API of the PID-Comm reproduction: a fast
// and flexible collective communication framework for (simulated)
// commodity processing-in-DIMM devices, after Noh, Hong et al., ISCA 2024.
//
// PID-Comm abstracts the PEs of a PIM-enabled DIMM system as a virtual
// hypercube and provides eight multi-instance collective communication
// primitives over user-selected dimensions, each in a conventional
// host-mediated version and in PID-Comm's optimized version (PE-assisted
// reordering, in-register modulation, cross-domain modulation).
//
// A minimal session mirrors Figure 10 of the paper:
//
//	sys, _ := pidcomm.NewSystem(pidcomm.PaperSystem(1 << 20))
//	mgr, _ := pidcomm.NewHypercubeManager(sys, []int{32, 32})
//	comm := mgr.Comm()
//	// ... place per-PE data ...
//	bd, _ := comm.ReduceScatter("01", srcOff, dstOff, n, pidcomm.I32, pidcomm.Sum, pidcomm.CM)
//	fmt.Println("simulated time:", bd.Total())
//
// The heavy lifting lives in internal/core (collectives), internal/dram,
// internal/dpu, internal/host (the PIM-DIMM substrate) and internal/cost
// (the calibrated timing model); this package re-exports the stable
// surface.
package pidcomm

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

// Re-exported element types (§ V-C).
const (
	I8  = elem.I8
	I16 = elem.I16
	I32 = elem.I32
	I64 = elem.I64
)

// Re-exported reduction operators.
const (
	Sum = elem.Sum
	Min = elem.Min
	Max = elem.Max
	Or  = elem.Or
	And = elem.And
	Xor = elem.Xor
)

// Re-exported optimization levels (§ V-A). Auto is the autotuner
// pseudo-level: the collective dry-runs every applicable level on the
// cost-only backend, picks the cheapest for the call signature, caches
// the decision on the Comm and executes with it (see Comm.AutoLevel).
const (
	Baseline = core.Baseline
	PR       = core.PR
	IM       = core.IM
	CM       = core.CM
	Auto     = core.Auto
)

// Primitive identifies one of the eight collectives (for AutoLevel).
type Primitive = core.Primitive

// Re-exported primitive identifiers.
const (
	AlltoAll      = core.AlltoAll
	ReduceScatter = core.ReduceScatter
	AllReduce     = core.AllReduce
	AllGather     = core.AllGather
	Scatter       = core.Scatter
	Gather        = core.Gather
	Reduce        = core.Reduce
	Broadcast     = core.Broadcast
)

// Backend executes collective schedules; see Comm.Backend,
// HypercubeManager.Comm (functional) and HypercubeManager.CostComm
// (cost-only).
type Backend = core.Backend

// Geometry describes the simulated DIMM system.
type Geometry = dram.Geometry

// Breakdown is a per-category simulated-time snapshot.
type Breakdown = cost.Breakdown

// Params is the hardware timing model.
type Params = cost.Params

// Level selects how much of the optimization stack a collective uses.
type Level = core.Level

// ElemType is an element data type.
type ElemType = elem.Type

// ReduceOp is a reduction operator.
type ReduceOp = elem.Op

// System is a simulated PIM-enabled DIMM memory system.
type System = dram.System

// Comm executes collectives; see the methods on core.Comm: AlltoAll,
// ReduceScatter, AllReduce, AllGather, Scatter, Gather, Reduce,
// Broadcast, AllReduceTopo.
//
// Comm is safe for concurrent use: independent collectives may be issued
// from multiple goroutines (executions serialize on the simulated
// machine, like a driver lock on real hardware); callers keep concurrent
// calls' MRAM regions disjoint.
//
// # Compiled plans
//
// Iterative workloads that repeat a collective signature every layer or
// batch can compile it once and replay it: Compile* methods
// (CompileAlltoAll, CompileReduceScatter, CompileAllReduce,
// CompileAllGather, CompileScatter, CompileGather, CompileReduce,
// CompileBroadcast) return a CompiledPlan whose Run replays the
// validated, lowered, charge-precomputed schedule:
//
//	plan, _ := comm.CompileReduceScatter("01", src, dst, n, pidcomm.I32, pidcomm.Sum, pidcomm.Auto)
//	for layer := 0; layer < L; layer++ {
//	    bd, _ := plan.Run() // identical cost/result to the one-shot call
//	}
//
// The one-shot collectives are thin wrappers over the same machinery
// with a plan cache keyed by the call signature, so repeated one-shot
// calls amortize too. On the cost-only backend a cached replay applies a
// precomputed charge trace — orders of magnitude faster than
// compile-each-call (see `pidbench -replay`) and bit-identical to it.
//
// # Asynchronous execution
//
// Submit* methods (and CompiledPlan.Submit) enqueue a collective on the
// Comm's submission queue and return a Future immediately. Plans execute
// in submission order with identical results to serial replay, but the
// overlap-aware elapsed time (Comm.Elapsed) lets independent plans —
// disjoint MRAM footprints — overlap: one plan's PE-side reorder kernels
// hide under another's bus epochs. Plans with data hazards (RAW/WAR/WAW
// on a region) are ordered automatically:
//
//	f1, _ := comm.SubmitReduceScatter("01", respOff, rsOff, n, pidcomm.I32, pidcomm.Sum, pidcomm.IM)
//	f2, _ := comm.SubmitAlltoAll("101", rsOff, aaOff, n/ny, pidcomm.Auto) // RAW on rsOff: ordered
//	bd1, _ := f1.Wait()
//	bd2, _ := f2.Wait()
//
// Comm.Flush is the barrier: call it before touching MRAM directly while
// submissions may be in flight. See `pidbench -exp async` for the overlap
// speedup this buys on a DLRM-style pipeline.
type Comm = core.Comm

// CompiledPlan is a collective compiled once — validated, Auto-resolved,
// lowered to schedule IR, charges precomputed — for repeated Run calls.
type CompiledPlan = core.CompiledPlan

// Future is the handle of one asynchronously submitted plan execution;
// see Comm's Submit* methods and CompiledPlan.Submit. Wait/Err/Cost/
// Results/Window block until the execution completes; Done polls.
type Future = core.Future

// PlanCacheStats reports the compiled-plan cache's hit/miss counters and
// memory accounting (Comm.PlanCacheStats; `pidinfo -plancache`).
type PlanCacheStats = core.PlanCacheStats

// MaxPendingPlans bounds a Comm's submission queue; Submit blocks once
// this many plans are in flight.
const MaxPendingPlans = core.MaxPendingPlans

// DefaultParams returns the calibrated timing parameters (DESIGN.md § 4).
func DefaultParams() Params { return cost.DefaultParams() }

// PaperSystem returns the paper's testbed geometry — 4 channels x 4 ranks
// x 8 chips x 8 banks = 1024 PEs — with the given per-bank MRAM bytes.
func PaperSystem(mramPerBank int) Geometry { return dram.PaperGeometry(mramPerBank) }

// NewSystem allocates a simulated system.
func NewSystem(geo Geometry) (*System, error) { return dram.NewSystem(geo) }

// HypercubeManager owns the virtual-hypercube abstraction (§ IV): the
// user-defined shape, the mapping to physical PEs, and the communication
// contexts created from it.
type HypercubeManager struct {
	hc     *core.Hypercube
	params Params
}

// NewHypercubeManager validates the shape (every dimension a power of two
// except the last; product equal to the PE count) and builds the manager
// with default cost parameters.
func NewHypercubeManager(sys *System, shape []int) (*HypercubeManager, error) {
	hc, err := core.NewHypercube(sys, shape)
	if err != nil {
		return nil, err
	}
	return &HypercubeManager{hc: hc, params: cost.DefaultParams()}, nil
}

// SetParams overrides the timing model for subsequently created Comms.
func (m *HypercubeManager) SetParams(p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.params = p
	return nil
}

// Shape returns the hypercube shape.
func (m *HypercubeManager) Shape() []int { return m.hc.Shape() }

// Groups returns the communication groups (PE lists in rank order) the
// dims selection produces — the cube slices of § IV-B2.
func (m *HypercubeManager) Groups(dims string) ([][]int, error) { return m.hc.Groups(dims) }

// Comm creates a communication context with a fresh cost meter, on the
// byte-accurate functional backend.
func (m *HypercubeManager) Comm() *Comm { return core.NewComm(m.hc, m.params) }

// CostComm creates a cost-only communication context: every collective
// charges the meter exactly as a functional Comm would (the breakdowns
// are bit-identical) but moves no bytes, making paper-scale sweeps and
// what-if studies orders of magnitude cheaper. Rooted primitives return
// nil result buffers. Combine with NewPhantomSystem to avoid allocating
// MRAM entirely.
func (m *HypercubeManager) CostComm() *Comm { return core.NewCostComm(m.hc, m.params) }

// NewPhantomSystem allocates a geometry-only system with no backing
// MRAM, for use with CostComm: topology and size queries work, but any
// attempt to move real bytes panics.
func NewPhantomSystem(geo Geometry) (*System, error) { return dram.NewPhantomSystem(geo) }

// DimsString builds a comm-dimensions bitmap, e.g. DimsString(3, 0, 2) ==
// "101" selecting the x and z axes of a 3-D hypercube.
func DimsString(numDims int, selected ...int) string {
	return core.DimsString(numDims, selected...)
}
