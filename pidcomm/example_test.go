package pidcomm_test

import (
	"fmt"

	"repro/pidcomm"
)

// The Figure 10 session: build a machine over a hypercube, select
// communication dimensions with a bitmap string, describe a collective
// and Run it.
func Example() {
	mach, _ := pidcomm.NewMachine(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 4, MramPerBank: 1 << 12,
	}, []int{4, 2, 4}) // Figure 5(a)
	comm, _ := mach.Comm()

	groups100, _ := mach.Groups("100") // x axis: Figure 5(b)
	groups101, _ := mach.Groups("101") // x and z axes: Figure 5(c)
	fmt.Printf("dims 100: %d groups of %d\n", len(groups100), len(groups100[0]))
	fmt.Printf("dims 101: %d groups of %d\n", len(groups101), len(groups101[0]))

	// One AlltoAll instance per cube slice, all at once.
	const m = 4 * 8
	for pe := 0; pe < 32; pe++ {
		comm.SetPEBuffer(pe, 0, make([]byte, m))
	}
	bd, err := comm.Run(pidcomm.Collective{
		Prim: pidcomm.AlltoAll, Dims: "100",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
		Level: pidcomm.CM,
	})
	fmt.Println("err:", err, "simulated time > 0:", bd.Total() > 0)
	// Output:
	// dims 100: 8 groups of 4
	// dims 101: 2 groups of 16
	// err: <nil> simulated time > 0: true
}

// Reduction primitives take an element type and operator; 8-bit elements
// additionally skip domain transfer (§ V-C).
func ExampleComm_Run() {
	mach, _ := pidcomm.NewMachine(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 12,
	}, []int{16})
	comm, _ := mach.Comm()

	const m = 16 * 8
	one := make([]byte, m)
	for i := 0; i < m; i++ {
		one[i] = 1 // every byte is an INT8 one
	}
	for pe := 0; pe < 16; pe++ {
		comm.SetPEBuffer(pe, 0, one)
	}
	_, err := comm.Run(pidcomm.Collective{
		Prim: pidcomm.AllReduce, Dims: "1",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
		Elem: pidcomm.I8, Op: pidcomm.Sum, Level: pidcomm.IM,
	})
	fmt.Println("err:", err, "sum of 16 ones:", comm.GetPEBuffer(0, 2*m, 1)[0])
	// Output:
	// err: <nil> sum of 16 ones: 16
}

// DimsString builds the comm-dimension bitmaps programmatically.
func ExampleDimsString() {
	fmt.Println(pidcomm.DimsString(3, 0))    // x
	fmt.Println(pidcomm.DimsString(3, 0, 2)) // x and z
	// Output:
	// 100
	// 101
}

// Asynchronous execution: Submit returns a Future immediately; plans
// with disjoint MRAM footprints overlap on the elapsed-time timeline, so
// the overlap-aware elapsed time is lower than the summed cost of the
// two plans (the meter itself still accounts every charge identically).
func ExampleComm_Submit() {
	mach, _ := pidcomm.NewMachine(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 13,
	}, []int{16})
	comm, _ := mach.Comm()

	const m = 16 * 8
	for pe := 0; pe < 16; pe++ {
		comm.SetPEBuffer(pe, 0, make([]byte, 16*m))
	}
	// Independent regions: the AllReduce's PE-side reordering overlaps
	// the AlltoAll's bus epochs in simulated time.
	f1, err1 := comm.Submit(pidcomm.Collective{
		Prim: pidcomm.AllReduce, Dims: "1",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
		Elem: pidcomm.I32, Op: pidcomm.Sum, Level: pidcomm.IM,
	})
	f2, err2 := comm.Submit(pidcomm.Collective{
		Prim: pidcomm.AlltoAll, Dims: "1",
		Src: pidcomm.Span(4*m, m), Dst: pidcomm.At(6 * m),
		Level: pidcomm.CM,
	})
	if err1 != nil || err2 != nil {
		fmt.Println("submit failed:", err1, err2)
		return
	}
	bd1, _ := f1.Wait()
	bd2, _ := f2.Wait()
	comm.Flush()
	fmt.Println("both done:", f1.Done() && f2.Done())
	fmt.Println("independent plans overlap:", comm.Elapsed() < bd1.Total()+bd2.Total())
	// Output:
	// both done: true
	// independent plans overlap: true
}

// Dependent plans — here a writer and a reader of the same region — are
// ordered by hazard: the reader's timeline window starts only after the
// writer's ends, with no explicit synchronization in between.
func ExampleFuture() {
	mach, _ := pidcomm.NewMachine(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 13,
	}, []int{16})
	comm, _ := mach.Comm()

	const m = 16 * 8
	for pe := 0; pe < 16; pe++ {
		comm.SetPEBuffer(pe, 0, make([]byte, 16*m))
	}
	w, _ := comm.Submit(pidcomm.Collective{ // writes [2m, 3m)
		Prim: pidcomm.AlltoAll, Dims: "1",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
		Level: pidcomm.Baseline,
	})
	r, _ := comm.Submit(pidcomm.Collective{ // reads [2m, ...): RAW
		Prim: pidcomm.AllGather, Dims: "1",
		Src: pidcomm.Span(2*m, m/16), Dst: pidcomm.At(4 * m),
		Level: pidcomm.IM,
	})
	_, wEnd := w.Window()
	rStart, _ := r.Window()
	fmt.Println("reader waits for writer:", rStart >= wEnd)
	fmt.Println("errors:", w.Err(), r.Err())
	// Output:
	// reader waits for writer: true
	// errors: <nil> <nil>
}

// Iterative workloads compile a collective once and replay it every
// layer: the plan carries the validated, lowered schedule plus
// precomputed charges, and each Run is bit-identical to the one-shot
// call. Leaving Level unset means Auto.
func ExampleCompiledPlan() {
	mach, _ := pidcomm.NewMachine(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 12,
	}, []int{16})
	comm, _ := mach.Comm()

	const m = 16 * 8
	for pe := 0; pe < 16; pe++ {
		comm.SetPEBuffer(pe, 0, make([]byte, m))
	}
	plan, err := comm.Compile(pidcomm.Collective{
		Prim: pidcomm.AllReduce, Dims: "1",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
		Elem: pidcomm.I32, Op: pidcomm.Sum, // Level unset: Auto
	})
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	first, _ := plan.Run()
	fmt.Println("Cost() predicted the first run:", plan.Cost().Total() == first.Total())
	for layer := 0; layer < 2; layer++ {
		if bd, _ := plan.Run(); bd.Total() <= 0 {
			fmt.Println("replay charged nothing")
		}
	}
	fmt.Println("Auto resolved to a concrete level:", plan.Level() != pidcomm.Auto)
	// Output:
	// Cost() predicted the first run: true
	// Auto resolved to a concrete level: true
}

// Multi-tenant serving: two models share one machine. Each tenant's
// regions are arena-relative — both place data "at offset 0" yet touch
// disjoint MRAM — and each tenant's meter accounts exactly its own
// plans, summing bit-identically to the machine breakdown.
func ExampleMachine_NewTenant() {
	mach, _ := pidcomm.NewMachine(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 13,
	}, []int{16})
	a, _ := mach.NewTenant(pidcomm.TenantConfig{Name: "dlrm", ArenaBytes: 1 << 12, Weight: 2})
	b, _ := mach.NewTenant(pidcomm.TenantConfig{Name: "gnn", ArenaBytes: 1 << 12, Weight: 1})

	const m = 16 * 8
	for pe := 0; pe < 16; pe++ {
		a.SetPEBuffer(pe, 0, make([]byte, m))
		b.SetPEBuffer(pe, 0, make([]byte, m))
	}
	aa := pidcomm.Collective{Prim: pidcomm.AlltoAll, Dims: "1",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m), Level: pidcomm.CM}
	fa, _ := a.Submit(aa)
	fb, _ := b.Submit(aa) // same descriptor, disjoint arena
	fa.Wait()
	fb.Wait()
	mach.Flush()

	sum := a.Meter().Add(b.Meter())
	fmt.Println("tenant meters sum to the machine breakdown:", sum == mach.Breakdown())
	fmt.Println("tenants overlap on the shared timeline:",
		mach.Elapsed() < mach.Breakdown().Total())
	// Output:
	// tenant meters sum to the machine breakdown: true
	// tenants overlap on the shared timeline: true
}
