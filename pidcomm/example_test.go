package pidcomm_test

import (
	"fmt"

	"repro/pidcomm"
)

// The Figure 10 session: configure a hypercube, select communication
// dimensions with a bitmap string, invoke a collective.
func Example() {
	sys, _ := pidcomm.NewSystem(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 4, MramPerBank: 1 << 12,
	})
	mgr, _ := pidcomm.NewHypercubeManager(sys, []int{4, 2, 4}) // Figure 5(a)
	comm := mgr.Comm()

	groups100, _ := mgr.Groups("100") // x axis: Figure 5(b)
	groups101, _ := mgr.Groups("101") // x and z axes: Figure 5(c)
	fmt.Printf("dims 100: %d groups of %d\n", len(groups100), len(groups100[0]))
	fmt.Printf("dims 101: %d groups of %d\n", len(groups101), len(groups101[0]))

	// One AlltoAll instance per cube slice, all at once.
	const m = 4 * 8
	for pe := 0; pe < 32; pe++ {
		comm.SetPEBuffer(pe, 0, make([]byte, m))
	}
	bd, err := comm.AlltoAll("100", 0, 2*m, m, pidcomm.CM)
	fmt.Println("err:", err, "simulated time > 0:", bd.Total() > 0)
	// Output:
	// dims 100: 8 groups of 4
	// dims 101: 2 groups of 16
	// err: <nil> simulated time > 0: true
}

// Reduction primitives take an element type and operator; 8-bit elements
// additionally skip domain transfer (§ V-C).
func ExampleHypercubeManager_Comm() {
	sys, _ := pidcomm.NewSystem(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 12,
	})
	mgr, _ := pidcomm.NewHypercubeManager(sys, []int{16})
	comm := mgr.Comm()

	const m = 16 * 8
	one := make([]byte, m)
	for i := 0; i < m; i++ {
		one[i] = 1 // every byte is an INT8 one
	}
	for pe := 0; pe < 16; pe++ {
		comm.SetPEBuffer(pe, 0, one)
	}
	_, err := comm.AllReduce("1", 0, 2*m, m, pidcomm.I8, pidcomm.Sum, pidcomm.IM)
	fmt.Println("err:", err, "sum of 16 ones:", comm.GetPEBuffer(0, 2*m, 1)[0])
	// Output:
	// err: <nil> sum of 16 ones: 16
}

// DimsString builds the comm-dimension bitmaps programmatically.
func ExampleDimsString() {
	fmt.Println(pidcomm.DimsString(3, 0))    // x
	fmt.Println(pidcomm.DimsString(3, 0, 2)) // x and z
	// Output:
	// 100
	// 101
}

// Asynchronous execution: Submit returns a Future immediately; plans
// with disjoint MRAM footprints overlap on the elapsed-time timeline, so
// the overlap-aware elapsed time is lower than the summed cost of the
// two plans (the meter itself still accounts every charge identically).
func ExampleComm_submit() {
	sys, _ := pidcomm.NewSystem(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 13,
	})
	mgr, _ := pidcomm.NewHypercubeManager(sys, []int{16})
	comm := mgr.Comm()

	const m = 16 * 8
	for pe := 0; pe < 16; pe++ {
		comm.SetPEBuffer(pe, 0, make([]byte, 16*m))
	}
	// Independent regions: the AllReduce's PE-side reordering overlaps
	// the AlltoAll's bus epochs in simulated time.
	f1, err1 := comm.SubmitAllReduce("1", 0, 2*m, m, pidcomm.I32, pidcomm.Sum, pidcomm.IM)
	f2, err2 := comm.SubmitAlltoAll("1", 4*m, 6*m, m, pidcomm.CM)
	if err1 != nil || err2 != nil {
		fmt.Println("submit failed:", err1, err2)
		return
	}
	bd1, _ := f1.Wait()
	bd2, _ := f2.Wait()
	comm.Flush()
	fmt.Println("both done:", f1.Done() && f2.Done())
	fmt.Println("independent plans overlap:", comm.Elapsed() < bd1.Total()+bd2.Total())
	// Output:
	// both done: true
	// independent plans overlap: true
}

// Dependent plans — here a writer and a reader of the same region — are
// ordered by hazard: the reader's timeline window starts only after the
// writer's ends, with no explicit synchronization in between.
func ExampleFuture() {
	sys, _ := pidcomm.NewSystem(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 13,
	})
	mgr, _ := pidcomm.NewHypercubeManager(sys, []int{16})
	comm := mgr.Comm()

	const m = 16 * 8
	for pe := 0; pe < 16; pe++ {
		comm.SetPEBuffer(pe, 0, make([]byte, 16*m))
	}
	w, _ := comm.SubmitAlltoAll("1", 0, 2*m, m, pidcomm.Baseline) // writes [2m, 3m)
	r, _ := comm.SubmitAllGather("1", 2*m, 4*m, m/16, pidcomm.IM) // reads  [2m, ...): RAW
	_, wEnd := w.Window()
	rStart, _ := r.Window()
	fmt.Println("reader waits for writer:", rStart >= wEnd)
	fmt.Println("errors:", w.Err(), r.Err())
	// Output:
	// reader waits for writer: true
	// errors: <nil> <nil>
}

// Iterative workloads compile a collective once and replay it every
// layer: the plan carries the validated, lowered schedule plus
// precomputed charges, and each Run is bit-identical to the one-shot
// call.
func ExampleCompiledPlan() {
	sys, _ := pidcomm.NewSystem(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 12,
	})
	mgr, _ := pidcomm.NewHypercubeManager(sys, []int{16})
	comm := mgr.Comm()

	const m = 16 * 8
	for pe := 0; pe < 16; pe++ {
		comm.SetPEBuffer(pe, 0, make([]byte, m))
	}
	plan, err := comm.CompileAllReduce("1", 0, 2*m, m, pidcomm.I32, pidcomm.Sum, pidcomm.Auto)
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	first, _ := plan.Run()
	fmt.Println("Cost() predicted the first run:", plan.Cost().Total() == first.Total())
	for layer := 0; layer < 2; layer++ {
		if bd, _ := plan.Run(); bd.Total() <= 0 {
			fmt.Println("replay charged nothing")
		}
	}
	fmt.Println("Auto resolved to a concrete level:", plan.Level() != pidcomm.Auto)
	// Output:
	// Cost() predicted the first run: true
	// Auto resolved to a concrete level: true
}
