package pidcomm_test

import (
	"sync"
	"testing"

	"repro/pidcomm"
)

// TestChurnMeterProperty is the tenant-churn accounting property: over
// 1000 create/serve/teardown cycles — with a long-lived tenant
// submitting concurrently the whole time — every churned tenant's meter
// is bit-identical to a solo run of the same requests on a fresh
// machine (attributed cost is placement-independent), the machine
// Breakdown stays bit-identical to the fold of retired-then-live tenant
// meters, and the allocator returns to its initial fully-coalesced free
// state. The concurrent background load makes this a race-detector
// test: churn must not race the submission worker.
func TestChurnMeterProperty(t *testing.T) {
	cycles := 1000
	if testing.Short() {
		cycles = 100
	}
	mach, err := pidcomm.NewMachine(tenantGeo, []int{8, 4}, pidcomm.CostOnly())
	if err != nil {
		t.Fatal(err)
	}
	const arena = 1 << 12
	const m = 8 * 8

	// Solo reference: the same two requests, alone on a fresh machine.
	solo, err := pidcomm.NewMachine(tenantGeo, []int{8, 4}, pidcomm.CostOnly())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := solo.NewTenant(pidcomm.TenantConfig{Name: "solo", ArenaBytes: arena})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range workload(m) {
		if _, err := sc.Run(d); err != nil {
			t.Fatal(err)
		}
	}
	want := sc.Meter()

	// Background tenant churning the scheduler concurrently throughout.
	bg, err := mach.NewTenant(pidcomm.TenantConfig{Name: "bg", ArenaBytes: arena})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, d := range workload(m) {
				f, err := bg.Submit(d)
				if err != nil {
					t.Error(err)
					return
				}
				if err := f.Err(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	for i := 0; i < cycles; i++ {
		c, err := mach.NewTenant(pidcomm.TenantConfig{Name: "churn", ArenaBytes: arena})
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		for _, d := range workload(m) {
			f, err := c.Submit(d)
			if err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
			if err := f.Err(); err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
		}
		if got := c.Meter(); got != want {
			t.Fatalf("cycle %d: meter diverged from solo run:\n got %v\nwant %v", i, got, want)
		}
		if err := mach.CloseTenant(c); err != nil {
			t.Fatalf("cycle %d: close: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// The machine total must be the exact fold of retired-then-live
	// meters — bit-identical, not approximately equal.
	var fold pidcomm.Breakdown
	for _, ti := range mach.RetiredTenants() {
		fold = fold.Add(ti.Meter)
	}
	for _, ti := range mach.Tenants() {
		fold = fold.Add(ti.Meter)
	}
	if bd := mach.Breakdown(); bd != fold {
		t.Fatalf("Breakdown diverged from tenant-meter fold:\n got %v\nfold %v", bd, fold)
	}
	if got, n := len(mach.RetiredTenants()), cycles; got != n {
		t.Fatalf("retired %d tenants, want %d", got, n)
	}

	// Teardown: with every tenant closed the allocator must re-coalesce
	// to its initial single free span.
	if err := mach.CloseTenant(bg); err != nil {
		t.Fatal(err)
	}
	spans := mach.FreeArenaSpans()
	if len(spans) != 1 || spans[0].Base != 0 || spans[0].Bytes != tenantGeo.MramPerBank {
		t.Fatalf("allocator did not return to its initial free state: %v", spans)
	}
}
