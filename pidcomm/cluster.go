package pidcomm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
)

// Cluster is a set of identically-configured Machines cooperating over
// an MPI-like network (§ IX-A, Figure 23(b)): the cluster-scale serving
// session. A ClusterCollective descriptor treats the H×P PEs of the
// whole cluster as one flat communicator; the cluster lowers it — per
// host — into ONE schedule-IR plan (intra-host legs, a network leg
// priced by the parameterized NetParams model, redistribution legs), so
// cluster collectives compile, cache, fuse and replay exactly like
// single-machine ones.
//
// Capacity studies run the whole thing on the cost-only backend
// (CostOnly option): breakdowns stay bit-identical to the functional
// cluster while no bytes exist or move, which is what makes sweeps to
// thousands of hosts cheap (`pidbench -exp cluster`).
type Cluster struct {
	machines []*Machine
	cc       *core.Cluster
}

// NewCluster builds hosts identically-configured Machines of the given
// geometry and hypercube shape and joins them into a cluster. All
// MachineOptions apply to every host (use WithParams to set NetParams
// alongside the per-host timing model).
func NewCluster(hosts int, geo Geometry, shape []int, opts ...MachineOption) (*Cluster, error) {
	if hosts <= 0 {
		return nil, fmt.Errorf("pidcomm: cluster needs at least one host, got %d", hosts)
	}
	machines := make([]*Machine, hosts)
	comms := make([]*core.Comm, hosts)
	for h := range machines {
		m, err := NewMachine(geo, shape, opts...)
		if err != nil {
			return nil, fmt.Errorf("pidcomm: cluster host %d: %w", h, err)
		}
		machines[h] = m
		comms[h] = m.cc
	}
	cc, err := core.NewCluster(comms)
	if err != nil {
		return nil, fmt.Errorf("pidcomm: %w", err)
	}
	return &Cluster{machines: machines, cc: cc}, nil
}

// NumHosts returns the number of hosts.
func (cl *Cluster) NumHosts() int { return cl.cc.NumHosts() }

// PEsPerHost returns each host's PE count.
func (cl *Cluster) PEsPerHost() int { return cl.cc.PEsPerHost() }

// NumPEs returns the cluster-wide PE count (hosts × PEs/host).
func (cl *Cluster) NumPEs() int { return cl.cc.NumPEs() }

// CostOnly reports whether the cluster runs the cost-only backend.
func (cl *Cluster) CostOnly() bool { return !cl.cc.Functional() }

// Machine returns host h's machine — per-host sessions, plan-cache and
// fusion statistics, and the per-host timeline all live there.
func (cl *Cluster) Machine(h int) *Machine { return cl.machines[h] }

// Run compiles (or fetches the cached plans for) d and executes it once
// across every host, returning the per-category maximum of the hosts'
// charges — the cluster critical path of the call. Regions are
// machine-absolute (the whole-MRAM window); use NewTenant for
// arena-relative sharded sessions.
func (cl *Cluster) Run(d ClusterCollective) (Breakdown, error) { return cl.cc.Run(d) }

// Compile lowers d into one compiled plan per host, cached under the
// descriptor: recompiling an equal descriptor is a per-host plan-cache
// hit, and the returned ClusterPlan replays with Run/Submit.
func (cl *Cluster) Compile(d ClusterCollective) (*ClusterPlan, error) { return cl.cc.Compile(d) }

// Submit compiles d and enqueues one asynchronous execution on every
// host's scheduler, returning a ClusterFuture.
func (cl *Cluster) Submit(d ClusterCollective) (*ClusterFuture, error) { return cl.cc.Submit(d) }

// Breakdown returns the cluster's cumulative cost snapshot: the
// per-category maximum across the host meters (hosts run concurrently;
// each host's meter includes its own network-leg time).
func (cl *Cluster) Breakdown() Breakdown { return cl.cc.Breakdown() }

// Elapsed returns the slowest host's overlap-aware simulated makespan.
func (cl *Cluster) Elapsed() Seconds { return cl.cc.Elapsed() }

// Flush blocks until every submitted plan has completed on every host.
func (cl *Cluster) Flush() { cl.cc.Flush() }

// NewTenant carves the same per-PE MRAM arena on every host and returns
// the cluster-wide session bound to the shards: one tenant per host,
// each with cfg's weight and quota. Cluster collectives compiled on the
// session resolve regions against the arena, admit against every
// shard's quota up front, and meter each host's charges to that host's
// shard. The per-host shards (Host) remain full single-machine sessions
// for local collectives and data placement.
func (cl *Cluster) NewTenant(cfg TenantConfig) (*ClusterComm, error) {
	shards := make([]*Comm, len(cl.machines))
	owners := make([]*core.Tenant, len(cl.machines))
	for h, m := range cl.machines {
		c, err := m.NewTenant(cfg)
		if err != nil {
			return nil, fmt.Errorf("pidcomm: cluster host %d: %w", h, err)
		}
		if b0, n0 := shards[0], c; h > 0 {
			base0, bytes0 := b0.Arena()
			base, bytes := n0.Arena()
			if base != base0 || bytes != bytes0 {
				return nil, fmt.Errorf("pidcomm: tenant %q arena diverges across hosts ([%d,+%d) on host 0, [%d,+%d) on host %d); carve cluster tenants only through Cluster.NewTenant",
					c.Name(), base0, bytes0, base, bytes, h)
			}
		}
		shards[h] = c
		owners[h] = c.t
	}
	return &ClusterComm{cl: cl, shards: shards, owners: owners}, nil
}

// Comm returns the whole-cluster convenience session: one tenant named
// "machine" per host covering all MRAM not yet carved, joined into a
// ClusterComm. The single-workload path — call it once and never think
// about tenancy.
func (cl *Cluster) Comm() (*ClusterComm, error) {
	free := cl.machines[0].FreeArenaBytes()
	if free <= 0 {
		return nil, fmt.Errorf("pidcomm: no MRAM left to bind a whole-cluster session")
	}
	return cl.NewTenant(TenantConfig{Name: "machine", ArenaBytes: free})
}

// ClusterComm is one sharded session on a Cluster: the same tenant
// carved on every host. Cluster collectives go through Run/Compile/
// Submit with arena-relative regions; per-host data placement and local
// collectives go through the host shards.
type ClusterComm struct {
	cl     *Cluster
	shards []*Comm
	owners []*core.Tenant
}

// Host returns the session's shard on host h — a full single-machine
// session (SetPEBuffer/GetPEBuffer, local Run/Compile/Submit, Meter).
func (c *ClusterComm) Host(h int) *Comm { return c.shards[h] }

// Name returns the session's tenant name.
func (c *ClusterComm) Name() string { return c.shards[0].Name() }

// Arena returns the session's per-PE MRAM window (identical on every
// host) as (base, bytes).
func (c *ClusterComm) Arena() (base, bytes int) { return c.shards[0].Arena() }

// Compile lowers d into one compiled plan per host against the
// session's arena; see Cluster.Compile.
func (c *ClusterComm) Compile(d ClusterCollective) (*ClusterPlan, error) {
	return c.cl.cc.CompileOn(c.owners, d)
}

// Run compiles (or fetches the cached plans for) d and executes it once
// across every host, returning the cluster-critical-path breakdown.
func (c *ClusterComm) Run(d ClusterCollective) (Breakdown, error) {
	cp, err := c.Compile(d)
	if err != nil {
		return Breakdown{}, err
	}
	return cp.Run()
}

// Submit compiles d and enqueues one asynchronous execution on every
// host's weighted-fair scheduler, returning a ClusterFuture.
func (c *ClusterComm) Submit(d ClusterCollective) (*ClusterFuture, error) {
	cp, err := c.Compile(d)
	if err != nil {
		return nil, err
	}
	return cp.Submit(), nil
}

// Breakdown returns the session's attributed cost: the per-category
// maximum across its host shards' meters.
func (c *ClusterComm) Breakdown() Breakdown {
	var bd Breakdown
	for _, s := range c.shards {
		bd = bd.Max(s.Meter())
	}
	return bd
}

// Flush blocks until every plan submitted on any host has completed.
func (c *ClusterComm) Flush() { c.cl.Flush() }

// ClusterCollective describes one collective over every PE of a
// cluster: the embedded Collective on the global communicator (Dims
// must select every dimension of the per-host hypercube; region sizes
// are the global call's), Root selecting the root host of the rooted
// primitives, and Flat requesting the naive non-hierarchical baseline
// (AllReduce only). On a cost-only cluster, Broadcast/Scatter payloads
// may be nil — the payload size comes from Dst.Bytes.
type ClusterCollective = core.ClusterCollective

// ClusterPlan is one cluster collective compiled into one plan per
// host, ready for repeated Run/Submit; Results returns rooted results,
// FusionReports the per-host fusion savings, HostPlan the per-host
// compiled plans.
type ClusterPlan = core.ClusterPlan

// ClusterFuture is the handle of one submitted cluster execution: one
// future per host, completing when all hosts have run.
type ClusterFuture = core.ClusterFuture

// NetParams is the parameterized inter-host network model: per-NIC link
// bandwidth and latency, goodput efficiency, NICs per host, switch
// tiers and per-tier latency, and straggler skew. Start from
// DefaultNetParams and override fields on Params.Net before
// NewMachine/NewCluster (WithParams).
type NetParams = cost.NetParams

// DefaultNetParams returns the paper's network operating point: one
// 10 Gbps NIC per host, 25 µs per-round MPI latency, no switch hops.
func DefaultNetParams() NetParams { return cost.DefaultNetParams() }
