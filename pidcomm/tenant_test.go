package pidcomm_test

import (
	"errors"
	"sync"
	"testing"

	"repro/pidcomm"
)

// tenantGeo is a small 32-PE machine with room for a few arenas.
var tenantGeo = pidcomm.Geometry{
	Channels: 1, RanksPerChannel: 2, BanksPerChip: 2, MramPerBank: 1 << 14,
}

// workload is the per-tenant request stream of the isolation tests: an
// AlltoAll/CM and a ReduceScatter/IM per request, all arena-relative.
func workload(m int) []pidcomm.Collective {
	return []pidcomm.Collective{
		{Prim: pidcomm.AlltoAll, Dims: "10",
			Src: pidcomm.Span(0, m), Dst: pidcomm.At(m), Level: pidcomm.CM},
		{Prim: pidcomm.ReduceScatter, Dims: "10",
			Src: pidcomm.Span(2*m, m), Dst: pidcomm.At(3 * m),
			Elem: pidcomm.I32, Op: pidcomm.Sum, Level: pidcomm.IM},
	}
}

// Cross-arena regions must be rejected at compile time: a tenant cannot
// name MRAM outside its window, in any direction, for any region role.
func TestTenantCrossArenaRegionRejected(t *testing.T) {
	mach, err := pidcomm.NewMachine(tenantGeo, []int{8, 4}, pidcomm.CostOnly())
	if err != nil {
		t.Fatal(err)
	}
	arena := 1 << 12
	a, err := mach.NewTenant(pidcomm.TenantConfig{Name: "a", ArenaBytes: arena})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.NewTenant(pidcomm.TenantConfig{Name: "b", ArenaBytes: arena}); err != nil {
		t.Fatal(err)
	}
	const m = 8 * 8
	cases := []struct {
		name string
		d    pidcomm.Collective
	}{
		{"src beyond arena", pidcomm.Collective{Prim: pidcomm.AlltoAll, Dims: "10",
			Src: pidcomm.Span(arena, m), Dst: pidcomm.At(0)}},
		{"src straddles arena end", pidcomm.Collective{Prim: pidcomm.AlltoAll, Dims: "10",
			Src: pidcomm.Span(arena-m/2, m), Dst: pidcomm.At(0)}},
		{"dst beyond arena", pidcomm.Collective{Prim: pidcomm.AlltoAll, Dims: "10",
			Src: pidcomm.Span(0, m), Dst: pidcomm.At(arena)}},
		{"negative offset", pidcomm.Collective{Prim: pidcomm.AlltoAll, Dims: "10",
			Src: pidcomm.Span(-m, m), Dst: pidcomm.At(0)}},
		{"implied dst overflows", pidcomm.Collective{Prim: pidcomm.AllGather, Dims: "10",
			Src: pidcomm.Span(0, arena/4), Dst: pidcomm.At(arena / 2)}},
		{"gather src outside", pidcomm.Collective{Prim: pidcomm.Gather, Dims: "10",
			Src: pidcomm.Span(arena+m, m)}},
	}
	for _, tc := range cases {
		if _, err := a.Compile(tc.d); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The same shapes fit when placed inside the arena.
	if _, err := a.Compile(pidcomm.Collective{Prim: pidcomm.AlltoAll, Dims: "10",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(m)}); err != nil {
		t.Errorf("in-arena descriptor rejected: %v", err)
	}
}

// soloMeter runs one tenant's workload alone — fresh machine, blocking
// runs — and returns its meter.
func soloMeter(t *testing.T, m, requests int) pidcomm.Breakdown {
	t.Helper()
	mach, err := pidcomm.NewMachine(tenantGeo, []int{8, 4}, pidcomm.CostOnly())
	if err != nil {
		t.Fatal(err)
	}
	c, err := mach.NewTenant(pidcomm.TenantConfig{Name: "solo", ArenaBytes: 4 * m})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < requests; r++ {
		for _, d := range workload(m) {
			if _, err := c.Run(d); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c.Meter()
}

// The central isolation property, under the race detector: two tenants
// submitting concurrently from their own goroutines (a) finish all
// plans, (b) account per-tenant meters that sum bit-identically to the
// machine breakdown, and (c) each meter is bit-identical to running
// that tenant's workload alone on its own machine — tenancy changes
// nothing about what a tenant is charged.
func TestTenantMetersBitIdenticalUnderConcurrency(t *testing.T) {
	const m = 8 * 32
	const requests = 16
	mach, err := pidcomm.NewMachine(tenantGeo, []int{8, 4}, pidcomm.CostOnly())
	if err != nil {
		t.Fatal(err)
	}
	a, err := mach.NewTenant(pidcomm.TenantConfig{Name: "a", ArenaBytes: 4 * m, Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mach.NewTenant(pidcomm.TenantConfig{Name: "b", ArenaBytes: 4 * m, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, c := range []*pidcomm.Comm{a, b} {
		wg.Add(1)
		go func(c *pidcomm.Comm) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				for _, d := range workload(m) {
					f, err := c.Submit(d)
					if err != nil {
						t.Error(err)
						return
					}
					if err := f.Err(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	mach.Flush()

	if sum := a.Meter().Add(b.Meter()); sum != mach.Breakdown() {
		t.Errorf("tenant meters %v + %v do not sum to machine breakdown %v",
			a.Meter(), b.Meter(), mach.Breakdown())
	}
	solo := soloMeter(t, m, requests)
	if a.Meter() != solo {
		t.Errorf("tenant a meter %v != solo meter %v", a.Meter(), solo)
	}
	if b.Meter() != solo {
		t.Errorf("tenant b meter %v != solo meter %v", b.Meter(), solo)
	}
	if got := mach.Elapsed(); got >= mach.Breakdown().Total() {
		t.Errorf("no overlap: elapsed %v >= total work %v", got, mach.Breakdown().Total())
	}
}

// Fair-share placement: with every tenant backlogged, submissions
// complete for all tenants and the weighted-fair makespan beats serving
// the tenants serially. Run with -race in CI.
func TestTenantFairShareBeatsSerial(t *testing.T) {
	const m = 8 * 32
	const requests = 8
	build := func() (*pidcomm.Machine, []*pidcomm.Comm) {
		mach, err := pidcomm.NewMachine(tenantGeo, []int{8, 4}, pidcomm.CostOnly())
		if err != nil {
			t.Fatal(err)
		}
		var comms []*pidcomm.Comm
		for _, cfg := range []pidcomm.TenantConfig{
			{Name: "w2", ArenaBytes: 4 * m, Weight: 2},
			{Name: "w1", ArenaBytes: 4 * m, Weight: 1},
			{Name: "w1b", ArenaBytes: 4 * m, Weight: 1},
		} {
			c, err := mach.NewTenant(cfg)
			if err != nil {
				t.Fatal(err)
			}
			comms = append(comms, c)
		}
		return mach, comms
	}

	smach, scomms := build()
	for r := 0; r < requests; r++ {
		for _, c := range scomms {
			for _, d := range workload(m) {
				if _, err := c.Run(d); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	serial := smach.Elapsed()

	fmach, fcomms := build()
	var wg sync.WaitGroup
	for _, c := range fcomms {
		wg.Add(1)
		go func(c *pidcomm.Comm) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				for _, d := range workload(m) {
					f, err := c.Submit(d)
					if err != nil {
						t.Error(err)
						return
					}
					if err := f.Err(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	fmach.Flush()
	fair := fmach.Elapsed()

	if smach.Breakdown() != fmach.Breakdown() {
		t.Errorf("work differs: serial %v, fair %v", smach.Breakdown(), fmach.Breakdown())
	}
	if fair >= serial {
		t.Errorf("weighted-fair makespan %v not better than serial %v", fair, serial)
	}
}

// Quota enforcement through the facade, and arena exhaustion.
func TestTenantQuotaAndCapacityThroughFacade(t *testing.T) {
	const m = 8 * 32
	mach, err := pidcomm.NewMachine(tenantGeo, []int{8, 4}, pidcomm.CostOnly())
	if err != nil {
		t.Fatal(err)
	}
	probe, err := mach.NewTenant(pidcomm.TenantConfig{Name: "probe", ArenaBytes: 4 * m})
	if err != nil {
		t.Fatal(err)
	}
	d := workload(m)[0]
	cp, err := probe.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	per := cp.Cost().Total()

	capped, err := mach.NewTenant(pidcomm.TenantConfig{
		Name: "capped", ArenaBytes: 4 * m, Quota: per * 3 / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := capped.Run(d); err != nil {
		t.Fatalf("first run within quota failed: %v", err)
	}
	if _, err := capped.Run(d); !errors.Is(err, pidcomm.ErrQuotaExceeded) {
		t.Fatalf("over-quota run: got %v, want ErrQuotaExceeded", err)
	}
	if got := capped.Admitted(); got != per {
		t.Errorf("admitted %v, want %v", got, per)
	}

	// Arena exhaustion: the remaining MRAM cannot fit a huge tenant.
	if _, err := mach.NewTenant(pidcomm.TenantConfig{
		Name: "huge", ArenaBytes: mach.MramPerBank(),
	}); err == nil {
		t.Fatal("oversized arena accepted")
	}
	free := mach.FreeArenaBytes()
	if free <= 0 {
		t.Fatalf("expected free arena bytes, got %d", free)
	}
	rest, err := mach.Comm()
	if err != nil {
		t.Fatal(err)
	}
	if _, bytes := rest.Arena(); bytes != free {
		t.Errorf("whole-machine session got %d bytes, want the remaining %d", bytes, free)
	}
	if _, err := mach.Comm(); err == nil {
		t.Error("second whole-machine session accepted with no MRAM left")
	}
}
