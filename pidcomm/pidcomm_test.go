package pidcomm_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/pidcomm"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := pidcomm.NewSystem(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := pidcomm.NewHypercubeManager(sys, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	comm := mgr.Comm()

	const m = 8 * 32
	rng := rand.New(rand.NewSource(1))
	in := make([][]byte, 64)
	for pe := range in {
		in[pe] = make([]byte, m)
		rng.Read(in[pe])
		comm.SetPEBuffer(pe, 0, in[pe])
	}
	bd, err := comm.AlltoAll("10", 0, 2*m, m, pidcomm.CM)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 {
		t.Error("no simulated time")
	}
	groups, err := mgr.Groups("10")
	if err != nil {
		t.Fatal(err)
	}
	// Verify the AlltoAll semantics through the public API.
	for _, grp := range groups {
		for j, dst := range grp {
			got := comm.GetPEBuffer(dst, 2*m, m)
			for i, src := range grp {
				if !bytes.Equal(got[i*32:(i+1)*32], in[src][j*32:(j+1)*32]) {
					t.Fatalf("dst %d block %d mismatch", dst, i)
				}
			}
		}
	}
}

func TestPaperSystemGeometry(t *testing.T) {
	geo := pidcomm.PaperSystem(1 << 16)
	if geo.NumPEs() != 1024 {
		t.Errorf("paper system has %d PEs, want 1024", geo.NumPEs())
	}
}

func TestSetParamsValidates(t *testing.T) {
	sys, _ := pidcomm.NewSystem(pidcomm.PaperSystem(4096))
	mgr, _ := pidcomm.NewHypercubeManager(sys, []int{1024})
	p := pidcomm.DefaultParams()
	p.ChannelBW = -1
	if err := mgr.SetParams(p); err == nil {
		t.Error("invalid params accepted")
	}
	if err := mgr.SetParams(pidcomm.DefaultParams()); err != nil {
		t.Error(err)
	}
}

func TestDimsString(t *testing.T) {
	if got := pidcomm.DimsString(3, 1); got != "010" {
		t.Errorf("DimsString = %q", got)
	}
}

func TestReduceScatterThroughFacade(t *testing.T) {
	sys, _ := pidcomm.NewSystem(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 12,
	})
	mgr, _ := pidcomm.NewHypercubeManager(sys, []int{16})
	comm := mgr.Comm()
	m := 16 * 8
	buf := make([]byte, m) // all zeros; sum is zero
	for pe := 0; pe < 16; pe++ {
		comm.SetPEBuffer(pe, 0, buf)
	}
	if _, err := comm.ReduceScatter("1", 0, 2*m, m, pidcomm.I32, pidcomm.Sum, pidcomm.IM); err != nil {
		t.Fatal(err)
	}
}
