package pidcomm_test

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"repro/pidcomm"
)

func TestQuickstartFlow(t *testing.T) {
	mach, err := pidcomm.NewMachine(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 14,
	}, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := mach.Comm()
	if err != nil {
		t.Fatal(err)
	}

	const m = 8 * 32
	rng := rand.New(rand.NewSource(1))
	in := make([][]byte, 64)
	for pe := range in {
		in[pe] = make([]byte, m)
		rng.Read(in[pe])
		comm.SetPEBuffer(pe, 0, in[pe])
	}
	bd, err := comm.Run(pidcomm.Collective{
		Prim: pidcomm.AlltoAll, Dims: "10",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
		Level: pidcomm.CM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 {
		t.Error("no simulated time")
	}
	groups, err := mach.Groups("10")
	if err != nil {
		t.Fatal(err)
	}
	// Verify the AlltoAll semantics through the public API.
	for _, grp := range groups {
		for j, dst := range grp {
			got := comm.GetPEBuffer(dst, 2*m, m)
			for i, src := range grp {
				if !bytes.Equal(got[i*32:(i+1)*32], in[src][j*32:(j+1)*32]) {
					t.Fatalf("dst %d block %d mismatch", dst, i)
				}
			}
		}
	}
	// The session meter accrued exactly the run's charges.
	if comm.Meter() != bd {
		t.Errorf("session meter %v != run breakdown %v", comm.Meter(), bd)
	}
}

func TestPaperSystemGeometry(t *testing.T) {
	geo := pidcomm.PaperSystem(1 << 16)
	if geo.NumPEs() != 1024 {
		t.Errorf("paper system has %d PEs, want 1024", geo.NumPEs())
	}
}

func TestWithParamsValidates(t *testing.T) {
	p := pidcomm.DefaultParams()
	p.ChannelBW = -1
	_, err := pidcomm.NewMachine(pidcomm.PaperSystem(4096), []int{1024}, pidcomm.WithParams(p))
	if err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := pidcomm.NewMachine(pidcomm.PaperSystem(4096), []int{1024},
		pidcomm.WithParams(pidcomm.DefaultParams())); err != nil {
		t.Error(err)
	}
}

func TestDimsString(t *testing.T) {
	if got := pidcomm.DimsString(3, 1); got != "010" {
		t.Errorf("DimsString = %q", got)
	}
}

// The cost-only surface: a CostOnly machine must reproduce the
// functional machine's breakdown exactly, and the Auto pseudo-level —
// the Collective zero value — must resolve and run through the facade.
func TestCostOnlyMachineAndAuto(t *testing.T) {
	geo := pidcomm.Geometry{Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 14}
	shape := []int{8, 8}
	const m = 8 * 32
	aa := pidcomm.Collective{
		Prim: pidcomm.AlltoAll, Dims: "10",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
		Level: pidcomm.CM,
	}

	mach, err := pidcomm.NewMachine(geo, shape)
	if err != nil {
		t.Fatal(err)
	}
	comm, _ := mach.Comm()
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, m)
	for pe := 0; pe < 64; pe++ {
		rng.Read(buf)
		comm.SetPEBuffer(pe, 0, buf)
	}
	want, err := comm.Run(aa)
	if err != nil {
		t.Fatal(err)
	}

	cmach, err := pidcomm.NewMachine(geo, shape, pidcomm.CostOnly())
	if err != nil {
		t.Fatal(err)
	}
	if !cmach.CostOnly() {
		t.Fatal("CostOnly() machine reports functional")
	}
	cc, _ := cmach.Comm()
	got, err := cc.Run(aa)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Errorf("cost breakdown differs: functional %v, cost %v", want, got)
	}

	// Auto on the public surface: the zero-value Level resolves to a
	// concrete level and runs.
	auto := aa
	auto.Level = pidcomm.Auto
	auto.Src, auto.Dst = pidcomm.Span(2*m, m), pidcomm.At(4*m)
	lvl, err := cc.AutoLevel(auto)
	if err != nil {
		t.Fatal(err)
	}
	if lvl == pidcomm.Auto {
		t.Error("AutoLevel returned the Auto sentinel")
	}
	if _, err := comm.Run(auto); err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterThroughFacade(t *testing.T) {
	mach, _ := pidcomm.NewMachine(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 12,
	}, []int{16})
	comm, _ := mach.Comm()
	m := 16 * 8
	buf := make([]byte, m) // all zeros; sum is zero
	for pe := 0; pe < 16; pe++ {
		comm.SetPEBuffer(pe, 0, buf)
	}
	if _, err := comm.Run(pidcomm.Collective{
		Prim: pidcomm.ReduceScatter, Dims: "1",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
		Elem: pidcomm.I32, Op: pidcomm.Sum, Level: pidcomm.IM,
	}); err != nil {
		t.Fatal(err)
	}
}

// An explicit destination size that disagrees with the implied one is a
// compile error, not a silent footprint change.
func TestExplicitRegionSizeChecked(t *testing.T) {
	mach, _ := pidcomm.NewMachine(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 12,
	}, []int{16})
	comm, _ := mach.Comm()
	const m = 16 * 8
	_, err := comm.Compile(pidcomm.Collective{
		Prim: pidcomm.ReduceScatter, Dims: "1",
		Src: pidcomm.Span(0, m), Dst: pidcomm.Span(2*m, m), // implied is m/16
		Elem: pidcomm.I32, Op: pidcomm.Sum,
	})
	if err == nil {
		t.Fatal("mismatched Dst.Bytes accepted")
	}
}

// The worker-pool knob is a pure throughput setting: it must be
// reflected by the accessors and leave collective results untouched.
func TestExecWorkersKnob(t *testing.T) {
	geo := pidcomm.Geometry{Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 14}
	mach, err := pidcomm.NewMachine(geo, []int{8, 8}, pidcomm.WithExecWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := mach.ExecWorkers(); got != 3 {
		t.Fatalf("ExecWorkers() = %d after WithExecWorkers(3)", got)
	}
	comm, err := mach.Comm()
	if err != nil {
		t.Fatal(err)
	}
	const m = 8 * 16
	buf := make([]byte, m)
	for i := range buf {
		buf[i] = byte(i)
	}
	run := func() []byte {
		// Refill src every run: the optimized levels consume it.
		for pe := 0; pe < 64; pe++ {
			comm.SetPEBuffer(pe, 0, buf)
		}
		if _, err := comm.Run(pidcomm.Collective{
			Prim: pidcomm.AlltoAll, Dims: "10",
			Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m), Level: pidcomm.CM,
		}); err != nil {
			t.Fatal(err)
		}
		var all []byte
		for pe := 0; pe < 64; pe++ {
			all = append(all, comm.GetPEBuffer(pe, 2*m, m)...)
		}
		return all
	}
	at3 := run()
	mach.SetExecWorkers(1)
	at1 := run()
	if !bytes.Equal(at3, at1) {
		t.Fatal("results differ between worker counts")
	}
	mach.SetExecWorkers(0)
	if got, def := mach.ExecWorkers(), runtime.GOMAXPROCS(0); got != def {
		t.Fatalf("ExecWorkers() = %d after reset, want GOMAXPROCS = %d", got, def)
	}
}
