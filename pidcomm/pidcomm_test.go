package pidcomm_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/pidcomm"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := pidcomm.NewSystem(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := pidcomm.NewHypercubeManager(sys, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	comm := mgr.Comm()

	const m = 8 * 32
	rng := rand.New(rand.NewSource(1))
	in := make([][]byte, 64)
	for pe := range in {
		in[pe] = make([]byte, m)
		rng.Read(in[pe])
		comm.SetPEBuffer(pe, 0, in[pe])
	}
	bd, err := comm.AlltoAll("10", 0, 2*m, m, pidcomm.CM)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 {
		t.Error("no simulated time")
	}
	groups, err := mgr.Groups("10")
	if err != nil {
		t.Fatal(err)
	}
	// Verify the AlltoAll semantics through the public API.
	for _, grp := range groups {
		for j, dst := range grp {
			got := comm.GetPEBuffer(dst, 2*m, m)
			for i, src := range grp {
				if !bytes.Equal(got[i*32:(i+1)*32], in[src][j*32:(j+1)*32]) {
					t.Fatalf("dst %d block %d mismatch", dst, i)
				}
			}
		}
	}
}

func TestPaperSystemGeometry(t *testing.T) {
	geo := pidcomm.PaperSystem(1 << 16)
	if geo.NumPEs() != 1024 {
		t.Errorf("paper system has %d PEs, want 1024", geo.NumPEs())
	}
}

func TestSetParamsValidates(t *testing.T) {
	sys, _ := pidcomm.NewSystem(pidcomm.PaperSystem(4096))
	mgr, _ := pidcomm.NewHypercubeManager(sys, []int{1024})
	p := pidcomm.DefaultParams()
	p.ChannelBW = -1
	if err := mgr.SetParams(p); err == nil {
		t.Error("invalid params accepted")
	}
	if err := mgr.SetParams(pidcomm.DefaultParams()); err != nil {
		t.Error(err)
	}
}

func TestDimsString(t *testing.T) {
	if got := pidcomm.DimsString(3, 1); got != "010" {
		t.Errorf("DimsString = %q", got)
	}
}

// The cost-only surface: a phantom system plus CostComm must reproduce
// the functional Comm's breakdown exactly, and the Auto pseudo-level
// must resolve and run through the facade.
func TestCostCommAndAutoThroughFacade(t *testing.T) {
	geo := pidcomm.Geometry{Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 14}
	shape := []int{8, 8}
	const m = 8 * 32

	sys, err := pidcomm.NewSystem(geo)
	if err != nil {
		t.Fatal(err)
	}
	mgr, _ := pidcomm.NewHypercubeManager(sys, shape)
	comm := mgr.Comm()
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, m)
	for pe := 0; pe < 64; pe++ {
		rng.Read(buf)
		comm.SetPEBuffer(pe, 0, buf)
	}
	want, err := comm.AlltoAll("10", 0, 2*m, m, pidcomm.CM)
	if err != nil {
		t.Fatal(err)
	}

	phantom, err := pidcomm.NewPhantomSystem(geo)
	if err != nil {
		t.Fatal(err)
	}
	cmgr, _ := pidcomm.NewHypercubeManager(phantom, shape)
	cc := cmgr.CostComm()
	if cc.Backend().Functional() {
		t.Fatal("CostComm returned a functional backend")
	}
	got, err := cc.AlltoAll("10", 0, 2*m, m, pidcomm.CM)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Errorf("cost breakdown differs: functional %v, cost %v", want, got)
	}

	// Auto on the public surface: resolves to a concrete level and runs.
	lvl, err := cc.AutoLevel(pidcomm.AlltoAll, "10", m, pidcomm.I32, pidcomm.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if lvl == pidcomm.Auto {
		t.Error("AutoLevel returned the Auto sentinel")
	}
	if _, err := comm.AlltoAll("10", 2*m, 4*m, m, pidcomm.Auto); err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterThroughFacade(t *testing.T) {
	sys, _ := pidcomm.NewSystem(pidcomm.Geometry{
		Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 12,
	})
	mgr, _ := pidcomm.NewHypercubeManager(sys, []int{16})
	comm := mgr.Comm()
	m := 16 * 8
	buf := make([]byte, m) // all zeros; sum is zero
	for pe := 0; pe < 16; pe++ {
		comm.SetPEBuffer(pe, 0, buf)
	}
	if _, err := comm.ReduceScatter("1", 0, 2*m, m, pidcomm.I32, pidcomm.Sum, pidcomm.IM); err != nil {
		t.Fatal(err)
	}
}
