GO ?= go

.PHONY: check fmt vet build test race bench-smoke bench-json bench-compare fuzz-smoke profile staticcheck checkdocs docs

check: fmt vet build test checkdocs

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector: exercises the concurrent-Comm
# stress test, the shared-engine launch test, and the parallel-executor
# determinism suite (shard overlap would surface as a data race).
race:
	$(GO) test -race ./...

# Fast sanity pass over the evaluation harness on the cost-only backend.
bench-smoke:
	$(GO) run ./cmd/pidbench -exp fig14,fusion,cluster,algo -backend=cost
	$(GO) run ./cmd/pidbench -exp multitenant

# Regenerate the checked-in benchmark baseline (run after an accepted,
# intentional performance change, and commit the result).
bench-json:
	$(GO) run ./cmd/pidbench -exp fig14,async,multitenant,fusion,funcspeed,cluster,serving,algo,reorder -backend=cost -json > bench_baseline.json

# The CI benchmark-regression gate: recollect the metrics and fail on
# any >10% cost/makespan regression against bench_baseline.json.
bench-compare:
	$(GO) run ./cmd/pidbench -compare bench_baseline.json

# A short randomized differential-testing run (fusion enabled — the
# default), the same budget CI uses. Scenarios also randomize the
# parallel executor's worker count.
fuzz-smoke:
	$(GO) run ./cmd/pidfuzz -n 200 -seed 7

# Profile the simulator itself: a functional-backend fig14 run with CPU
# and heap profiles written next to the repo root. Inspect with
# `go tool pprof cpu.pprof` / `go tool pprof -sample_index=alloc_space mem.pprof`.
profile:
	$(GO) run ./cmd/pidbench -exp fig14,funcspeed -cpuprofile cpu.pprof -memprofile mem.pprof

# Lint with staticcheck if installed (CI installs it pinned).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi

# Documentation gate: every package must carry package-level
# documentation (docs_test.go enforces it); `check` runs vet separately.
checkdocs:
	$(GO) test -run TestPackageDocs .

# Serve godoc locally if the godoc tool is installed; otherwise print
# every package's documentation with go doc.
docs:
	@if command -v godoc >/dev/null 2>&1; then \
		echo "serving http://localhost:6060/pkg/repro/"; godoc -http=:6060; \
	else \
		echo "godoc not installed (go install golang.org/x/tools/cmd/godoc@latest); printing package docs:"; \
		for p in $$($(GO) list ./...); do echo; echo "=== $$p"; $(GO) doc $$p; done; \
	fi
