GO ?= go

.PHONY: check fmt vet build test bench-smoke

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast sanity pass over the evaluation harness on the cost-only backend.
bench-smoke:
	$(GO) run ./cmd/pidbench -exp fig14 -backend=cost
