GO ?= go

.PHONY: check fmt vet build test race bench-smoke

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector: exercises the concurrent-Comm
# stress test and the shared-engine launch test.
race:
	$(GO) test -race ./...

# Fast sanity pass over the evaluation harness on the cost-only backend.
bench-smoke:
	$(GO) run ./cmd/pidbench -exp fig14 -backend=cost
