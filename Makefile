GO ?= go

.PHONY: check fmt vet build test race bench-smoke checkdocs docs

check: fmt vet build test checkdocs

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector: exercises the concurrent-Comm
# stress test and the shared-engine launch test.
race:
	$(GO) test -race ./...

# Fast sanity pass over the evaluation harness on the cost-only backend.
bench-smoke:
	$(GO) run ./cmd/pidbench -exp fig14 -backend=cost
	$(GO) run ./cmd/pidbench -exp multitenant

# Documentation gate: every package must carry package-level
# documentation (docs_test.go enforces it); `check` runs vet separately.
checkdocs:
	$(GO) test -run TestPackageDocs .

# Serve godoc locally if the godoc tool is installed; otherwise print
# every package's documentation with go doc.
docs:
	@if command -v godoc >/dev/null 2>&1; then \
		echo "serving http://localhost:6060/pkg/repro/"; godoc -http=:6060; \
	else \
		echo "godoc not installed (go install golang.org/x/tools/cmd/godoc@latest); printing package docs:"; \
		for p in $$($(GO) list ./...); do echo; echo "=== $$p"; $(GO) doc $$p; done; \
	fi
