// Command pidtrace runs a single collective primitive on the simulated
// PIM-DIMM system and prints its execution-time breakdown per category —
// the per-primitive view behind Figure 17. Useful for exploring how the
// optimization levels change where time goes.
//
// Usage:
//
//	pidtrace -prim AA -dims 10 -shape 32,32 -size 65536 -level CM
//	pidtrace -prim RS -dims 1 -shape 1024 -size 262144 -level Base -elem INT8
//	pidtrace -prim AR -dims 10 -shape 4,64 -size 65536 -level Base -algo ring
//	pidtrace -prim AG -dims 10 -shape 4,64 -size 1024 -level Auto
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/elem"
)

func main() {
	prim := flag.String("prim", "AA", "primitive: AA RS AR AG Sc Ga Re Br")
	dims := flag.String("dims", "10", "comm-dimensions bitmap (Figure 10)")
	shape := flag.String("shape", "32,32", "hypercube shape, comma-separated")
	size := flag.Int("size", 64<<10, "per-PE bytes on the larger side")
	level := flag.String("level", "CM", "optimization level: Auto, Base, PR, IM, CM")
	algo := flag.String("algo", "Auto", "schedule algorithm: Auto, ref, ring, tree, rsag (AllReduce/Broadcast)")
	elemName := flag.String("elem", "INT32", "element type: INT8 INT16 INT32 INT64")
	op := flag.String("op", "SUM", "reduction op: SUM MIN MAX OR AND XOR")
	flag.Parse()

	spec := bench.PrimSpec{RecvPerPE: *size}
	for _, part := range strings.Split(*shape, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal("bad shape: %v", err)
		}
		spec.Shape = append(spec.Shape, v)
	}
	spec.Dims = *dims

	ok := false
	for _, p := range core.Primitives() {
		if p.String() == *prim {
			spec.Prim, ok = p, true
		}
	}
	if !ok {
		fatal("unknown primitive %q", *prim)
	}
	levels := map[string]core.Level{"Auto": core.Auto, "Base": core.Baseline, "PR": core.PR, "IM": core.IM, "CM": core.CM}
	if spec.Level, ok = levels[*level]; !ok {
		fatal("unknown level %q", *level)
	}
	var err error
	if spec.Algo, err = core.ParseAlgorithm(*algo); err != nil {
		fatal("%v", err)
	}
	for _, t := range elem.Types() {
		if t.String() == *elemName {
			spec.Elem, ok = t, true
		}
	}
	for _, o := range elem.Ops() {
		if o.String() == *op {
			spec.Op = o
		}
	}

	thr, bd, stats, err := bench.RunPrimitiveWithStats(spec)
	if err != nil {
		fatal("%v", err)
	}
	alg, eff, err := bench.ResolvePrimitive(spec)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%s on %v dims=%s, %d B/PE, level %v, algo %v (resolved: %v at %v)\n",
		spec.Prim.LongName(), spec.Shape, spec.Dims, spec.RecvPerPE, spec.Level, spec.Algo, alg, eff)
	fmt.Printf("throughput: %.2f GB/s   simulated time: %.3f ms\n\n", thr, float64(bd.Total())*1e3)
	fmt.Printf("%-16s %12s %7s\n", "category", "time (ms)", "share")
	for _, c := range cost.Categories() {
		t := bd.Get(c)
		if t == 0 {
			continue
		}
		fmt.Printf("%-16s %12.4f %6.1f%%\n", c, float64(t)*1e3, 100*float64(t)/float64(bd.Total()))
	}
	fmt.Printf("\nbus traffic: %d bursts, %.2f MiB total", stats.Bursts, float64(stats.TotalBytes())/(1<<20))
	for ch, b := range stats.BytesPerChannel {
		fmt.Printf("  ch%d=%.2fMiB", ch, float64(b)/(1<<20))
	}
	fmt.Println()
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pidtrace: "+format+"\n", args...)
	os.Exit(1)
}
