// Command pidlayout demonstrates the data-placement physics the whole
// paper rests on (Figure 1 and § II-B): how a 64-byte burst stripes
// across the 8 banks of an entangled group, why the host cannot interpret
// PIM-resident data without a domain transfer, and how cross-domain
// modulation moves whole elements between banks with one byte rotation.
package main

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/host"
	"repro/internal/vec"

	"repro/internal/cost"
)

func main() {
	sys, err := dram.NewSystem(dram.Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 1, MramPerBank: 64})
	if err != nil {
		panic(err)
	}
	h := host.New(sys, cost.DefaultParams())

	fmt.Println("1. Host-domain data: eight 8-byte elements A..H")
	data := make([]byte, 64)
	for e := 0; e < 8; e++ {
		for b := 0; b < 8; b++ {
			data[8*e+b] = byte('A'+e)<<4 | byte(b) // element letter, byte index
		}
	}
	printWords("   host buffer", data)

	fmt.Println("\n2. Written raw (no domain transfer): each element shatters")
	fmt.Println("   across the 8 banks — byte i of the burst lands in chip i%8:")
	var r vec.Reg
	copy(r[:], data)
	h.BeginXfer()
	h.WriteBurst(0, 0, r)
	h.EndXfer()
	for c := 0; c < 8; c++ {
		fmt.Printf("   bank %d: % x\n", c, sys.BankBytes(c)[:8])
	}

	fmt.Println("\n3. Domain transfer first (8x8 byte transpose, § II-B):")
	dt := append([]byte(nil), data...)
	h.DomainTransfer(dt)
	copy(r[:], dt)
	h.BeginXfer()
	h.WriteBurst(0, 0, r)
	h.EndXfer()
	for c := 0; c < 8; c++ {
		fmt.Printf("   bank %d: % x   <- element %c intact\n", c, sys.BankBytes(c)[:8], 'A'+c)
	}

	fmt.Println("\n4. Cross-domain modulation (§ V-A3): one byte-level rotate of")
	fmt.Println("   the PIM-domain burst moves every element to the next bank")
	fmt.Println("   (this is _mm512_rol_epi64 on real hardware):")
	var u vec.Unit
	h.BeginXfer()
	burst := h.ReadBurst(0, 0)
	burst = u.RotBanks(burst, 8, 1)
	h.WriteBurst(0, 0, burst)
	h.EndXfer()
	for c := 0; c < 8; c++ {
		fmt.Printf("   bank %d: % x   <- element %c\n", c, sys.BankBytes(c)[:8], 'A'+(c+7)%8)
	}
	fmt.Println("\nNo domain transfer was needed for step 4 — that single fused")
	fmt.Println("shuffle is what eliminates DT from AlltoAll and AllGather.")
}

func printWords(label string, b []byte) {
	fmt.Printf("%s:", label)
	for e := 0; e < 8; e++ {
		fmt.Printf(" %c[% x]", 'A'+e, b[8*e:8*e+2])
	}
	fmt.Println(" ...")
}
