// Command pidbench regenerates the paper's evaluation artifacts: every
// table and figure of § VIII has a registered experiment (see DESIGN.md's
// per-experiment index).
//
// Usage:
//
//	pidbench -list
//	pidbench -exp fig14
//	pidbench -exp async -backend=cost
//	pidbench -exp async -sched lookahead
//	pidbench -exp reorder
//	pidbench -exp all [-full] [-backend=cost] [-async] [-workers N]
//	pidbench -exp fig14,async,multitenant,fusion,funcspeed -backend=cost -json
//	pidbench -compare bench_baseline.json [-threshold 0.10]
//	pidbench -exp fig14 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The default scale keeps the whole suite within laptop memory and
// minutes; -full uses paper-scale payloads (the timing model is linear in
// payload, so shapes are identical; see EXPERIMENTS.md). -backend=cost
// runs the primitive experiments on the cost-only backend (identical
// tables, orders of magnitude faster); -async routes primitive
// measurements through the Submit/Future API (identical tables — the
// "async" experiment measures the overlap speedup itself). -workers
// fixes the functional backend's worker-pool size for every experiment
// comm (0 = GOMAXPROCS). -sched names the submission scheduling policy
// the "async" experiment's scheduled comm uses (wfq, edf, fifo,
// lookahead — see `pidinfo -sched`); the "reorder" experiment sweeps
// all registered policies against an adversarial submission order.
// -exp accepts a comma-separated list.
//
// -cpuprofile/-memprofile write pprof profiles of the run (the heap
// profile is taken at exit), for digging into the simulator's own
// hotspots: `make profile` wraps a functional fig14 run with both.
//
// -json emits the selected experiments' regression metrics (simulated
// seconds — plus funcspeed's wall-clock parallel/serial ratio) as JSON —
// the format of the checked-in bench_baseline.json. -compare recollects
// those metrics and fails (exit 1) on any metric more than -threshold
// worse than the baseline: the CI benchmark-regression gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/pidcomm"
)

func main() { os.Exit(run()) }

func run() int {
	exp := flag.String("exp", "", "experiment ID (e.g. fig14, table1), a comma-separated list, or 'all'")
	full := flag.Bool("full", false, "use paper-scale payloads (slower, more memory)")
	backend := flag.String("backend", "functional", "execution backend for primitive experiments: 'functional' (moves real bytes) or 'cost' (cost-only; identical tables, orders of magnitude faster — application experiments always run functionally)")
	async := flag.Bool("async", false, "route primitive measurements through the Submit/Future async API (identical tables; validates the async path). The 'async' experiment measures the overlap speedup itself")
	sched := flag.String("sched", "wfq", "submission scheduling policy of the 'async' experiment's scheduled comm, by registry name (see pidinfo -sched); the 'reorder' experiment sweeps all registered policies")
	workers := flag.Int("workers", 0, "functional-backend worker-pool size for every experiment comm (0 = GOMAXPROCS)")
	replay := flag.Int("replay", 0, "run the plan-cache replay experiment with N iterations per mode (cold compile-each-call vs cached CompiledPlan replay)")
	jsonOut := flag.Bool("json", false, "emit the selected experiments' regression metrics as JSON instead of tables (deterministic)")
	compare := flag.String("compare", "", "baseline metrics JSON to compare against; exits 1 on >threshold regression")
	threshold := flag.Float64("threshold", 0.10, "relative regression allowed by -compare (0.10 = 10%)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	var costOnly bool
	switch *backend {
	case "functional":
	case "cost":
		costOnly = true
	default:
		fmt.Fprintf(os.Stderr, "pidbench: unknown backend %q (want 'functional' or 'cost')\n", *backend)
		return 2
	}
	bench.SetExecWorkers(*workers)
	pol, err := pidcomm.ParseSchedPolicy(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pidbench:", err)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pidbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pidbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pidbench:", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pidbench:", err)
			}
			f.Close()
		}()
	}

	ids := strings.FieldsFunc(*exp, func(r rune) bool { return r == ',' })

	if *jsonOut {
		if len(ids) == 0 {
			ids = bench.MetricExperimentIDs()
		}
		if err := bench.WriteMetricsJSON(os.Stdout, ids); err != nil {
			fmt.Fprintln(os.Stderr, "pidbench:", err)
			return 1
		}
		return 0
	}
	if *compare != "" {
		f, err := os.Open(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pidbench:", err)
			return 1
		}
		baseline, err := bench.ReadMetricsJSON(f)
		f.Close()
		if err == nil {
			err = bench.CompareMetrics(os.Stdout, baseline, ids, *threshold)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pidbench:", err)
			return 1
		}
		return 0
	}

	if *replay > 0 {
		fmt.Printf("=== replay: plan-cache throughput, %d iterations per mode ===\n", *replay)
		start := time.Now()
		if err := bench.RunReplay(bench.Options{W: os.Stdout, Full: *full, CostOnly: true}, *replay); err != nil {
			fmt.Fprintln(os.Stderr, "pidbench:", err)
			return 1
		}
		fmt.Printf("\n(%s)\n", time.Since(start).Round(time.Millisecond))
		return 0
	}

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			return 2
		}
		return 0
	}
	o := bench.Options{W: os.Stdout, Full: *full, CostOnly: costOnly, Async: *async, Sched: pol}
	start := time.Now()
	if *exp == "all" {
		err = bench.RunAll(o)
	} else {
		// Resolve the whole list before running anything: a typo in the
		// last ID must not waste the earlier experiments' run time.
		exps := make([]bench.Experiment, 0, len(ids))
		for _, id := range ids {
			var e bench.Experiment
			if e, err = bench.ByID(id); err != nil {
				fmt.Fprintln(os.Stderr, "pidbench:", err)
				return 2
			}
			exps = append(exps, e)
		}
		for i, e := range exps {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
			if err = e.Run(o); err != nil {
				break
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pidbench:", err)
		return 1
	}
	fmt.Printf("\n(%s)\n", time.Since(start).Round(time.Millisecond))
	return 0
}
