// Command pidbench regenerates the paper's evaluation artifacts: every
// table and figure of § VIII has a registered experiment (see DESIGN.md's
// per-experiment index).
//
// Usage:
//
//	pidbench -list
//	pidbench -exp fig14
//	pidbench -exp async -backend=cost
//	pidbench -exp all [-full] [-backend=cost] [-async]
//
// The default scale keeps the whole suite within laptop memory and
// minutes; -full uses paper-scale payloads (the timing model is linear in
// payload, so shapes are identical; see EXPERIMENTS.md). -backend=cost
// runs the primitive experiments on the cost-only backend (identical
// tables, orders of magnitude faster); -async routes primitive
// measurements through the Submit/Future API (identical tables — the
// "async" experiment measures the overlap speedup itself).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment ID (e.g. fig14, table1) or 'all'")
	full := flag.Bool("full", false, "use paper-scale payloads (slower, more memory)")
	backend := flag.String("backend", "functional", "execution backend for primitive experiments: 'functional' (moves real bytes) or 'cost' (cost-only; identical tables, orders of magnitude faster — application experiments always run functionally)")
	async := flag.Bool("async", false, "route primitive measurements through the Submit/Future async API (identical tables; validates the async path). The 'async' experiment measures the overlap speedup itself")
	replay := flag.Int("replay", 0, "run the plan-cache replay experiment with N iterations per mode (cold compile-each-call vs cached CompiledPlan replay)")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	var costOnly bool
	switch *backend {
	case "functional":
	case "cost":
		costOnly = true
	default:
		fmt.Fprintf(os.Stderr, "pidbench: unknown backend %q (want 'functional' or 'cost')\n", *backend)
		os.Exit(2)
	}

	if *replay > 0 {
		fmt.Printf("=== replay: plan-cache throughput, %d iterations per mode ===\n", *replay)
		start := time.Now()
		if err := bench.RunReplay(bench.Options{W: os.Stdout, Full: *full, CostOnly: true}, *replay); err != nil {
			fmt.Fprintln(os.Stderr, "pidbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\n(%s)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	o := bench.Options{W: os.Stdout, Full: *full, CostOnly: costOnly, Async: *async}
	start := time.Now()
	var err error
	if *exp == "all" {
		err = bench.RunAll(o)
	} else {
		var e bench.Experiment
		e, err = bench.ByID(*exp)
		if err == nil {
			fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
			err = e.Run(o)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pidbench:", err)
		os.Exit(1)
	}
	fmt.Printf("\n(%s)\n", time.Since(start).Round(time.Millisecond))
}
