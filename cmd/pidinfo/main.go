// Command pidinfo prints the simulated system's configuration: the DIMM
// topology and hypercube mapping, the framework support matrix (Table I),
// the technique applicability matrix (Table II), and the calibrated cost
// model parameters. With -plancache it additionally runs a representative
// compile/replay workload on a cost-only comm and prints the
// compiled-plan cache statistics (hit/miss counters, cached entries,
// charge-trace memory).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

func main() {
	mram := flag.Int("mram", 1<<20, "per-bank MRAM bytes")
	plancache := flag.Bool("plancache", false, "run a representative compile/replay workload and print plan-cache statistics")
	flag.Parse()

	if *plancache {
		if err := printPlanCache(*mram); err != nil {
			fmt.Fprintln(os.Stderr, "pidinfo:", err)
			os.Exit(1)
		}
		return
	}

	geo := dram.PaperGeometry(*mram)
	sys, err := dram.NewSystem(geo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pidinfo:", err)
		os.Exit(1)
	}
	fmt.Println("Simulated PIM-enabled DIMM system (paper testbed, § VIII-A)")
	fmt.Printf("  channels=%d ranks/channel=%d chips/rank=%d banks/chip=%d\n",
		geo.Channels, geo.RanksPerChannel, dram.ChipsPerRank, geo.BanksPerChip)
	fmt.Printf("  PEs=%d entangled groups=%d MRAM/bank=%d B\n",
		geo.NumPEs(), geo.NumGroups(), geo.MramPerBank)
	id := sys.PEFromLinear(9)
	fmt.Printf("  example mapping: linear PE 9 -> channel %d rank %d chip %d bank %d\n\n",
		id.Channel, id.Rank, id.Chip, id.Bank)

	fmt.Println("Table I — comparison against conventional approaches:")
	fmt.Println(core.TableI())
	fmt.Println("Table II — applicability of the proposed techniques:")
	fmt.Println(core.TableII())

	p := cost.DefaultParams()
	fmt.Println("Cost-model parameters (calibrated, DESIGN.md § 4):")
	fmt.Printf("  host clock            %.1f GHz\n", p.HostClockHz/1e9)
	fmt.Printf("  channel bandwidth     %.1f GB/s (x%d channels)\n", p.ChannelBW/1e9, geo.Channels)
	fmt.Printf("  host memory bandwidth %.1f GB/s\n", p.HostMemBW/1e9)
	fmt.Printf("  modulation B/cycle    scalar %.1f, local %.1f, SIMD %.1f\n", p.ScalarModBPC, p.LocalModBPC, p.SIMDModBPC)
	fmt.Printf("  reduction B/cycle     scalar %.1f, local %.1f, vertical-SIMD %.1f\n", p.ScalarRedBPC, p.LocalRedBPC, p.ReduceBPC)
	fmt.Printf("  domain transfer       %.1f B/cycle\n", p.DTBPC)
	fmt.Printf("  DPU: MRAM %.0f MB/s, WRAM %.1f GB/s, %d MHz\n", p.DPUMramBW/1e6, p.DPUWramBW/1e9, int(p.DPUInstrHz/1e6))
	fmt.Printf("  kernel launch         %.0f us, rank-parallel transfers: %v\n", float64(p.KernelLaunch)*1e6, p.RankParallel)
	fmt.Printf("  network (multi-host)  %.1f Gbps, %.0f us latency\n", p.NetworkBW*8/1e9, float64(p.NetworkLatency)*1e6)
}

// printPlanCache compiles and replays a few representative collectives on
// a cost-only comm over the paper geometry (phantom MRAM) and prints the
// plan-cache statistics: compulsory misses on first compile, hits on
// every replay, and the cached charge traces' memory footprint.
func printPlanCache(mram int) error {
	sys, err := dram.NewPhantomSystem(dram.PaperGeometry(mram))
	if err != nil {
		return err
	}
	hc, err := core.NewHypercube(sys, []int{32, 32})
	if err != nil {
		return err
	}
	comm := core.NewCostComm(hc, cost.DefaultParams())
	m := 64 << 10
	if 4*m > mram {
		m = mram / 4
	}
	run := func() error {
		if _, err := comm.AlltoAll("10", 0, 2*m, m, core.CM); err != nil {
			return err
		}
		if _, err := comm.ReduceScatter("10", 0, 2*m, m, elem.I32, elem.Sum, core.IM); err != nil {
			return err
		}
		if _, err := comm.AllReduce("10", 0, 2*m, m, elem.I32, elem.Sum, core.IM); err != nil {
			return err
		}
		return nil
	}
	const replays = 16
	for i := 0; i < replays; i++ {
		if err := run(); err != nil {
			return err
		}
	}
	st := comm.PlanCacheStats()
	fmt.Println("Compiled-plan cache (3 signatures, 1 compile +", replays-1, "replays each):")
	fmt.Printf("  plan lookups          %d hits / %d misses\n", st.PlanHits, st.PlanMisses)
	fmt.Printf("  charge-trace lookups  %d hits / %d misses\n", st.TraceHits, st.TraceMisses)
	fmt.Printf("  cached entries        %d plans, %d traces\n", st.CachedPlans, st.CachedTraces)
	fmt.Printf("  trace memory          %d entries, ~%d B\n", st.TraceEntries, st.TraceBytes)
	return nil
}
