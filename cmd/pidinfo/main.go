// Command pidinfo prints the simulated system's configuration: the DIMM
// topology and hypercube mapping, the framework support matrix (Table I),
// the technique applicability matrix (Table II), and the calibrated cost
// model parameters.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
)

func main() {
	mram := flag.Int("mram", 1<<20, "per-bank MRAM bytes")
	flag.Parse()

	geo := dram.PaperGeometry(*mram)
	sys, err := dram.NewSystem(geo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pidinfo:", err)
		os.Exit(1)
	}
	fmt.Println("Simulated PIM-enabled DIMM system (paper testbed, § VIII-A)")
	fmt.Printf("  channels=%d ranks/channel=%d chips/rank=%d banks/chip=%d\n",
		geo.Channels, geo.RanksPerChannel, dram.ChipsPerRank, geo.BanksPerChip)
	fmt.Printf("  PEs=%d entangled groups=%d MRAM/bank=%d B\n",
		geo.NumPEs(), geo.NumGroups(), geo.MramPerBank)
	id := sys.PEFromLinear(9)
	fmt.Printf("  example mapping: linear PE 9 -> channel %d rank %d chip %d bank %d\n\n",
		id.Channel, id.Rank, id.Chip, id.Bank)

	fmt.Println("Table I — comparison against conventional approaches:")
	fmt.Println(core.TableI())
	fmt.Println("Table II — applicability of the proposed techniques:")
	fmt.Println(core.TableII())

	p := cost.DefaultParams()
	fmt.Println("Cost-model parameters (calibrated, DESIGN.md § 4):")
	fmt.Printf("  host clock            %.1f GHz\n", p.HostClockHz/1e9)
	fmt.Printf("  channel bandwidth     %.1f GB/s (x%d channels)\n", p.ChannelBW/1e9, geo.Channels)
	fmt.Printf("  host memory bandwidth %.1f GB/s\n", p.HostMemBW/1e9)
	fmt.Printf("  modulation B/cycle    scalar %.1f, local %.1f, SIMD %.1f\n", p.ScalarModBPC, p.LocalModBPC, p.SIMDModBPC)
	fmt.Printf("  reduction B/cycle     scalar %.1f, local %.1f, vertical-SIMD %.1f\n", p.ScalarRedBPC, p.LocalRedBPC, p.ReduceBPC)
	fmt.Printf("  domain transfer       %.1f B/cycle\n", p.DTBPC)
	fmt.Printf("  DPU: MRAM %.0f MB/s, WRAM %.1f GB/s, %d MHz\n", p.DPUMramBW/1e6, p.DPUWramBW/1e9, int(p.DPUInstrHz/1e6))
	fmt.Printf("  kernel launch         %.0f us, rank-parallel transfers: %v\n", float64(p.KernelLaunch)*1e6, p.RankParallel)
	fmt.Printf("  network (multi-host)  %.1f Gbps, %.0f us latency\n", p.NetworkBW*8/1e9, float64(p.NetworkLatency)*1e6)
}
