// Command pidinfo prints the simulated system's configuration: the DIMM
// topology and hypercube mapping, the framework support matrix (Table I),
// the technique applicability matrix (Table II), and the calibrated cost
// model parameters. With -plancache it additionally runs a representative
// compile/replay workload on a cost-only comm and prints the
// compiled-plan cache statistics (hit/miss counters, cached entries,
// charge-trace memory). With -tenants it provisions a representative
// multi-tenant machine, serves a few requests per tenant and lists every
// tenant's arena, scheduler weight, quota state and attributed meter.
// With -cluster it builds a representative cost-only cluster, compiles
// and replays global collectives through the cluster layer, and prints
// the per-host plan-cache, fusion and network-lane statistics.
// With -serving it drives the canonical online-serving scenario
// (internal/serve) under both scheduling policies and prints the
// per-tenant sojourn percentiles, deadline misses and churn outcome.
// With -sched it lists the registered submission scheduling policies
// (the values WithSched and `pidbench -sched` accept).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
	"repro/internal/serve"
	"repro/pidcomm"
)

func main() {
	mram := flag.Int("mram", 1<<20, "per-bank MRAM bytes")
	plancache := flag.Bool("plancache", false, "run a representative compile/replay workload and print plan-cache statistics")
	tenants := flag.Bool("tenants", false, "provision a representative multi-tenant machine and list arenas, weights, quotas and per-tenant meters")
	cluster := flag.Bool("cluster", false, "build a representative cost-only cluster, replay global collectives through the cluster layer and print per-host plan-cache, fusion and network-lane statistics")
	serving := flag.Bool("serving", false, "drive the canonical online-serving scenario under WFQ and EDF and print per-tenant sojourn percentiles, deadline misses and churn outcome")
	auto := flag.Bool("auto", false, "resolve a representative set of Auto signatures on a cost-only comm and dump the auto-decision cache under both objectives")
	schedList := flag.Bool("sched", false, "list the registered submission scheduling policies (the names WithSched and `pidbench -sched` accept)")
	flag.Parse()

	if *schedList {
		printScheds()
		return
	}

	if *auto {
		if err := printAuto(*mram); err != nil {
			fmt.Fprintln(os.Stderr, "pidinfo:", err)
			os.Exit(1)
		}
		return
	}

	if *plancache {
		if err := printPlanCache(*mram); err != nil {
			fmt.Fprintln(os.Stderr, "pidinfo:", err)
			os.Exit(1)
		}
		return
	}
	if *tenants {
		if err := printTenants(*mram); err != nil {
			fmt.Fprintln(os.Stderr, "pidinfo:", err)
			os.Exit(1)
		}
		return
	}
	if *cluster {
		if err := printCluster(*mram); err != nil {
			fmt.Fprintln(os.Stderr, "pidinfo:", err)
			os.Exit(1)
		}
		return
	}
	if *serving {
		if err := printServing(); err != nil {
			fmt.Fprintln(os.Stderr, "pidinfo:", err)
			os.Exit(1)
		}
		return
	}

	geo := dram.PaperGeometry(*mram)
	sys, err := dram.NewSystem(geo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pidinfo:", err)
		os.Exit(1)
	}
	fmt.Println("Simulated PIM-enabled DIMM system (paper testbed, § VIII-A)")
	fmt.Printf("  channels=%d ranks/channel=%d chips/rank=%d banks/chip=%d\n",
		geo.Channels, geo.RanksPerChannel, dram.ChipsPerRank, geo.BanksPerChip)
	fmt.Printf("  PEs=%d entangled groups=%d MRAM/bank=%d B\n",
		geo.NumPEs(), geo.NumGroups(), geo.MramPerBank)
	id := sys.PEFromLinear(9)
	fmt.Printf("  example mapping: linear PE 9 -> channel %d rank %d chip %d bank %d\n\n",
		id.Channel, id.Rank, id.Chip, id.Bank)

	fmt.Println("Table I — comparison against conventional approaches:")
	fmt.Println(core.TableI())
	fmt.Println("Table II — applicability of the proposed techniques:")
	fmt.Println(core.TableII())

	p := cost.DefaultParams()
	fmt.Println("Cost-model parameters (calibrated, DESIGN.md § 4):")
	fmt.Printf("  host clock            %.1f GHz\n", p.HostClockHz/1e9)
	fmt.Printf("  channel bandwidth     %.1f GB/s (x%d channels)\n", p.ChannelBW/1e9, geo.Channels)
	fmt.Printf("  host memory bandwidth %.1f GB/s\n", p.HostMemBW/1e9)
	fmt.Printf("  modulation B/cycle    scalar %.1f, local %.1f, SIMD %.1f\n", p.ScalarModBPC, p.LocalModBPC, p.SIMDModBPC)
	fmt.Printf("  reduction B/cycle     scalar %.1f, local %.1f, vertical-SIMD %.1f\n", p.ScalarRedBPC, p.LocalRedBPC, p.ReduceBPC)
	fmt.Printf("  domain transfer       %.1f B/cycle\n", p.DTBPC)
	fmt.Printf("  DPU: MRAM %.0f MB/s, WRAM %.1f GB/s, %d MHz\n", p.DPUMramBW/1e6, p.DPUWramBW/1e9, int(p.DPUInstrHz/1e6))
	fmt.Printf("  kernel launch         %.0f us, rank-parallel transfers: %v\n", float64(p.KernelLaunch)*1e6, p.RankParallel)
	fmt.Printf("  network (cluster)     %.1f Gbps x%d NIC (eff %.0f%%), %.0f us latency, %d switch tier(s)\n",
		p.Net.LinkBW*8/1e9, p.Net.NICsPerHost, p.Net.Efficiency*100,
		float64(p.Net.LinkLatency)*1e6, p.Net.SwitchTiers)
}

// printScheds lists the scheduler registry: one row per registered
// submission scheduling policy, in value order — the name column is what
// ParseSchedPolicy (and therefore `pidbench -sched`) accepts.
func printScheds() {
	fmt.Println("Registered submission scheduling policies (WithSched / pidbench -sched):")
	fmt.Printf("  %-5s %-10s %s\n", "value", "name", "description")
	for _, sp := range core.SchedSpecs() {
		fmt.Printf("  %-5d %-10s %s\n", int(sp.Policy), sp.Name, sp.Desc)
	}
}

// printAuto resolves a representative spread of Auto-level signatures —
// the four x-axis primitives at a small and a large payload, plus an
// algorithm-constrained AllReduce — on a cost-only comm over the paper
// geometry, then dumps the comm's auto-decision cache: one row per
// signature with the winning (algorithm, level) candidate and its
// scores under both objectives. The whole table is printed twice, once
// per objective, because the cache is scored (and cleared) per
// objective; rows where the two picks differ are where the makespan
// objective earns its keep.
func printAuto(mram int) error {
	sys, err := dram.NewPhantomSystem(dram.PaperGeometry(mram))
	if err != nil {
		return err
	}
	hc, err := core.NewHypercube(sys, []int{32, 32})
	if err != nil {
		return err
	}
	comm := core.NewCostComm(hc, cost.DefaultParams())
	m := 64 << 10
	if 5*m > mram {
		m = mram / 5
		m -= m % 256
	}
	if m < 256 {
		return fmt.Errorf("-mram %d too small for the auto demo", mram)
	}
	var sigs []core.Collective
	for _, sz := range []int{m / 16, m} {
		for _, prim := range []core.Primitive{core.AlltoAll, core.ReduceScatter, core.AllReduce, core.AllGather} {
			b := sz
			if prim == core.AllGather {
				b = sz / 32 // per-PE contribution; the gathered output is sz
			}
			d := core.Collective{Prim: prim, Dims: "10",
				Src: core.Span(0, b), Dst: core.At(2 * b), Level: core.Auto}
			if prim == core.ReduceScatter || prim == core.AllReduce {
				d.Elem, d.Op = elem.I32, elem.Sum
			}
			sigs = append(sigs, d)
		}
	}
	sigs = append(sigs, core.Collective{Prim: core.AllReduce, Dims: "10",
		Src: core.Span(0, m), Dst: core.At(2 * m),
		Elem: elem.I32, Op: elem.Sum, Level: core.Auto, Algorithm: core.AlgoRing})

	fmt.Printf("Auto-decision cache: 32x32 cost-only comm, %d signatures per objective\n", len(sigs))
	for _, obj := range []core.AutoObjective{core.AutoMeter, core.AutoMakespan} {
		comm.SetAutoObjective(obj)
		for _, d := range sigs {
			if _, _, err := comm.AutoResolveOf(d); err != nil {
				return err
			}
		}
		fmt.Printf("\nobjective %s:\n", obj)
		fmt.Printf("  %-4s %-6s %10s %-10s %-12s %12s %14s\n",
			"prim", "dims", "B/PE", "constraint", "pick", "meter(ms)", "makespan(ms)")
		for _, dec := range comm.AutoDecisions() {
			fmt.Printf("  %-4v %-6s %10d %-10v %-12s %12.4f %14.4f\n",
				dec.Prim, dec.Dims, dec.Bytes, dec.Constraint,
				fmt.Sprintf("(%v, %v)", dec.Algo, dec.Level),
				float64(dec.Meter)*1e3, float64(dec.Makespan)*1e3)
		}
	}
	return nil
}

// printPlanCache compiles and replays a few representative collectives —
// including a fused ReduceScatter→AlltoAll sequence — on a cost-only
// comm over the paper geometry (phantom MRAM), then prints the
// plan-cache statistics (compulsory misses on first compile, hits on
// every replay, the cached charge traces' memory footprint) and the
// fusion statistics alongside them.
//
// The representative payload is derived from -mram and normalized to the
// collectives' 32-block, burst-aligned structure up front, so the
// listing always reflects a populated cache: earlier versions computed a
// misaligned payload for odd -mram values, every compile failed, and the
// command reported statistics with no plan ever compiled.
func printPlanCache(mram int) error {
	sys, err := dram.NewPhantomSystem(dram.PaperGeometry(mram))
	if err != nil {
		return err
	}
	hc, err := core.NewHypercube(sys, []int{32, 32})
	if err != nil {
		return err
	}
	comm := core.NewCostComm(hc, cost.DefaultParams())
	m := 64 << 10
	if 5*m > mram {
		m = mram / 5
	}
	// 32 blocks per group at 8-byte burst granularity: m must be a
	// multiple of 256 (and the regions below stay within MRAM).
	m -= m % 256
	if m < 256 {
		return fmt.Errorf("-mram %d too small for the plan-cache demo (need at least %d B/bank)", mram, 5*256)
	}
	run := func() error {
		if _, err := comm.AlltoAll("10", 0, 2*m, m, core.CM); err != nil {
			return err
		}
		if _, err := comm.ReduceScatter("10", 0, 2*m, m, elem.I32, elem.Sum, core.IM); err != nil {
			return err
		}
		if _, err := comm.AllReduce("10", 0, 2*m, m, elem.I32, elem.Sum, core.IM); err != nil {
			return err
		}
		return nil
	}
	// A fused sequence: the AlltoAll relocates [0,m) into [2m,3m) and the
	// ReduceScatter consumes it — the pair whose rotate/unrotate steps
	// the fusion optimizer cancels.
	seq, err := comm.CompileSequence(
		core.Collective{Prim: core.AlltoAll, Dims: "10",
			Src: core.Span(0, m), Dst: core.At(2 * m), Level: core.CM},
		core.Collective{Prim: core.ReduceScatter, Dims: "10",
			Src: core.Span(2*m, m), Dst: core.At(4 * m),
			Elem: elem.I32, Op: elem.Sum, Level: core.IM})
	if err != nil {
		return err
	}
	const replays = 16
	for i := 0; i < replays; i++ {
		if err := run(); err != nil {
			return err
		}
		if _, err := seq.Run(); err != nil {
			return err
		}
	}
	st := comm.PlanCacheStats()
	fmt.Println("Compiled-plan cache (3 signatures + 1 fused sequence, 1 compile +", replays-1, "replays each):")
	fmt.Printf("  plan lookups          %d hits / %d misses\n", st.PlanHits, st.PlanMisses)
	fmt.Printf("  charge-trace lookups  %d hits / %d misses\n", st.TraceHits, st.TraceMisses)
	fmt.Printf("  cached entries        %d plans, %d traces, %d sequences\n", st.CachedPlans, st.CachedTraces, st.CachedSeqs)
	fmt.Printf("  trace memory          %d entries, ~%d B\n", st.TraceEntries, st.TraceBytes)
	fs := comm.FusionStats()
	fmt.Printf("\nSchedule fusion (level %v):\n", comm.Fuse())
	fmt.Printf("  plans through fuser   %d compiled, %d changed\n", fs.PlansCompiled, fs.PlansFused)
	fmt.Printf("  rewrites              %d rotates merged, %d elided; %d syncs elided; %d epochs coalesced\n",
		fs.RotatesMerged, fs.RotatesElided, fs.SyncsElided, fs.EpochsCoalesced)
	fmt.Printf("  saved per replay set  %d PE-bytes, %d PE-instr, %.3f ms simulated\n",
		fs.PEBytesSaved, fs.PEInstrSaved, float64(fs.CostSaved)*1e3)
	fmt.Printf("  RS->AA sequence       %v\n", seq.FusionReport())
	return nil
}

// printCluster builds a representative cost-only cluster (4 hosts of
// the paper geometry), compiles a global AllReduce and a global
// AlltoAll through the cluster layer's whole-cluster session, replays
// both from their cached ClusterPlans, and prints the per-call costs,
// the fusion rewrites of the per-host schedules, and the per-host
// plan-cache and network-lane statistics — the cluster-scale
// counterpart of -plancache.
func printCluster(mram int) error {
	const hosts = 4
	cl, err := pidcomm.NewCluster(hosts, pidcomm.PaperSystem(mram), []int{32, 32}, pidcomm.CostOnly())
	if err != nil {
		return err
	}
	session, err := cl.Comm()
	if err != nil {
		return err
	}
	// The global AlltoAll needs one 8-byte block per global PE and the
	// AllReduce 8-byte-per-rank alignment: both want m to be a multiple
	// of 8 * (global PEs), within the three regions MRAM must hold.
	G := cl.NumPEs()
	m := 64 << 10
	if 5*m > mram {
		m = mram / 5
	}
	m -= m % (8 * G)
	if m == 0 {
		return fmt.Errorf("-mram %d too small for the cluster demo (need at least %d B/bank)", mram, 5*8*G)
	}
	ds := []struct {
		name string
		d    pidcomm.ClusterCollective
	}{
		{"AllReduce", pidcomm.ClusterCollective{Collective: pidcomm.Collective{
			Prim: pidcomm.AllReduce, Dims: "11", Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
			Elem: pidcomm.I32, Op: pidcomm.Sum, Level: pidcomm.IM}}},
		{"AlltoAll", pidcomm.ClusterCollective{Collective: pidcomm.Collective{
			Prim: pidcomm.AlltoAll, Dims: "11", Src: pidcomm.Span(0, m), Dst: pidcomm.At(2 * m),
			Level: pidcomm.CM}}},
	}
	const replays = 8
	fmt.Printf("Cluster: %d hosts x %d PEs = %d global PEs, cost-only, %d KiB/PE payloads\n\n",
		hosts, cl.PEsPerHost(), G, m>>10)
	for _, e := range ds {
		cp, err := session.Compile(e.d)
		if err != nil {
			return err
		}
		again, err := session.Compile(e.d)
		if err != nil {
			return err
		}
		if again != cp {
			return fmt.Errorf("recompiling the %s descriptor missed the cluster plan cache", e.name)
		}
		for i := 0; i < replays; i++ {
			if _, err := cp.Run(); err != nil {
				return err
			}
		}
		var syncs, epochs int
		for _, r := range cp.FusionReports() {
			syncs += r.SyncsElided
			epochs += r.EpochsCoalesced
		}
		bd := cp.Cost()
		fmt.Printf("global %-10s per run %8.3f ms (network %7.3f ms), 1 compile (recompile hits the cluster cache) + %d replays, fusion: %d syncs elided\n",
			e.name, float64(bd.Total())*1e3, float64(bd.Get(cost.Network))*1e3, replays, syncs)
		_ = epochs
	}

	fmt.Printf("\n%-6s %18s %14s %14s %14s\n", "host", "seq compiles", "cached seqs", "net busy(ms)", "meter(ms)")
	for h := 0; h < hosts; h++ {
		mach := cl.Machine(h)
		st := mach.PlanCacheStats()
		fmt.Printf("%-6d %18d %14d %14.3f %14.3f\n",
			h, st.PlanMisses, st.CachedSeqs,
			float64(mach.NetBusy())*1e3, float64(mach.Breakdown().Total())*1e3)
	}
	fmt.Printf("\ncluster breakdown (slowest host per category): %v\n", cl.Breakdown())
	fmt.Printf("elapsed (overlap-aware makespan, slowest host): %.3f ms\n", float64(cl.Elapsed())*1e3)
	return nil
}

// printTenants provisions a representative multi-tenant machine over the
// paper geometry (cost-only, phantom MRAM), serves a few asynchronous
// requests per tenant and prints the machine's tenant table: arena
// windows, weighted-fair shares, quota state and per-tenant meters. The
// quota'd tenant is sized to run out mid-stream, so the listing shows
// admission control in action.
func printTenants(mram int) error {
	mach, err := pidcomm.NewMachine(pidcomm.PaperSystem(mram), []int{32, 32}, pidcomm.CostOnly())
	if err != nil {
		return err
	}
	m := 16 << 10
	if 4*m > mram/3 {
		m = mram / 12
		m -= m % 512
	}
	if m < 512 {
		return fmt.Errorf("-mram %d too small for the tenant demo (need at least %d B/bank for 3 arenas)", mram, 3*4*512)
	}
	aa := pidcomm.Collective{Prim: pidcomm.AlltoAll, Dims: "10",
		Src: pidcomm.Span(0, m), Dst: pidcomm.At(m), Level: pidcomm.CM}

	dlrm, err := mach.NewTenant(pidcomm.TenantConfig{Name: "dlrm", ArenaBytes: 4 * m, Weight: 2})
	if err != nil {
		return err
	}
	// Price one request from its compiled plan (offsets don't affect
	// cost) so the demo quota can be set to ~2.5 requests.
	cp, err := dlrm.Compile(aa)
	if err != nil {
		return err
	}
	per := cp.Cost().Total()

	comms := []*pidcomm.Comm{dlrm}
	for _, cfg := range []pidcomm.TenantConfig{
		{Name: "gnn", ArenaBytes: 4 * m, Weight: 1},
		{Name: "capped", ArenaBytes: 4 * m, Weight: 1, Quota: per * 5 / 2},
	} {
		c, err := mach.NewTenant(cfg)
		if err != nil {
			return err
		}
		comms = append(comms, c)
	}
	const requests = 4
	rejected := map[string]int{}
	for r := 0; r < requests; r++ {
		for _, c := range comms {
			f, err := c.Submit(aa)
			if err != nil {
				return err
			}
			if werr := f.Err(); werr != nil {
				if !errors.Is(werr, pidcomm.ErrQuotaExceeded) {
					return werr
				}
				rejected[c.Name()]++
			}
		}
	}
	mach.Flush()

	fmt.Printf("Multi-tenant machine: %d PEs (32x32), %d B MRAM/bank, %d B free, cost-only\n",
		mach.NumPEs(), mach.MramPerBank(), mach.FreeArenaBytes())
	fmt.Printf("%d requests submitted per tenant (%d KiB/PE AlltoAll each)\n\n", requests, m>>10)
	fmt.Printf("%-8s %-18s %6s %12s %12s %10s %8s\n",
		"tenant", "arena [base,end)", "weight", "quota (ms)", "admitted(ms)", "meter(ms)", "rejected")
	for _, ti := range mach.Tenants() {
		quota := "unlimited"
		if ti.Quota > 0 {
			quota = fmt.Sprintf("%.3f", float64(ti.Quota)*1e3)
		}
		fmt.Printf("%-8s [%8d,%8d) %6.0f %12s %12.3f %10.3f %8d\n",
			ti.Name, ti.ArenaBase, ti.ArenaBase+ti.ArenaBytes, ti.Weight,
			quota, float64(ti.Admitted)*1e3, float64(ti.Meter.Total())*1e3,
			rejected[ti.Name])
	}
	fmt.Printf("\nmachine breakdown (sum of tenant meters): %v\n", mach.Breakdown())
	fmt.Printf("elapsed (overlap-aware makespan):         %.3f ms\n", float64(mach.Elapsed())*1e3)
	return nil
}

// printServing drives the canonical chat/feed/batch serving scenario
// (internal/serve) at the rho=0.9 operating point under both scheduling
// policies, then once more under EDF with tenant churn, and prints the
// per-tenant sojourn percentiles — the interactive counterpart of
// `pidbench -exp serving`.
func printServing() error {
	const rho, requests = 0.9, 800
	fmt.Printf("Online serving: chat/feed/batch mix at rho=%.1f offered load, %d requests, cost-only\n\n", rho, requests)
	for _, pol := range []pidcomm.SchedPolicy{pidcomm.SchedWFQ, pidcomm.SchedEDF} {
		cfg, err := serve.Scenario(pol, rho, requests)
		if err != nil {
			return err
		}
		res, err := serve.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("policy %s: %.0f req/s, SLO p99 %.4f ms, %d missed, %d shed\n",
			pol, res.Throughput, float64(res.SLO.P99)*1e3, res.Missed, res.Shed)
		fmt.Printf("  %-8s %-8s %-8s %10s %12s %12s %8s %6s\n",
			"tenant", "model", "arrivals", "requests", "p50(ms)", "p99(ms)", "missed", "shed")
		for i, ts := range res.Tenants {
			sp := cfg.Tenants[i]
			fmt.Printf("  %-8s %-8s %-8s %10d %12.4f %12.4f %8d %6d\n",
				ts.Name, sp.Model, sp.Arrivals, ts.Stats.Count,
				float64(ts.Stats.P50)*1e3, float64(ts.Stats.P99)*1e3, ts.Stats.Missed, ts.Stats.Shed)
		}
		fmt.Println()
	}
	cfg, err := serve.Scenario(pidcomm.SchedEDF, rho, requests)
	if err != nil {
		return err
	}
	cfg.ChurnEvery = 50
	res, err := serve.Run(cfg)
	if err != nil {
		return err
	}
	churns := 0
	for _, ts := range res.Tenants {
		churns += ts.Churns
	}
	fmt.Printf("with tenant churn every 50 completions (edf): %d teardown/recreate cycles, SLO p99 %.4f ms, free list re-coalesced to %v\n",
		churns, float64(res.SLO.P99)*1e3, res.FreeSpans)
	return nil
}
