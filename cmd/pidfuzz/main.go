// Command pidfuzz performs randomized differential testing of the
// collective library: it generates random system geometries, hypercube
// shapes, dimension selections, payload sizes, element types, reduction
// operators and optimization levels, runs every primitive, and compares
// the resulting bytes against the independent reference model.
//
// This is the heavyweight companion of the package tests: run it for as
// many iterations as you like (it reports the first divergence found).
//
//	pidfuzz -n 200 -seed 7
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dram"
	"repro/internal/elem"
)

type scenario struct {
	geo   dram.Geometry
	shape []int
	dims  string
	s     int // block bytes
	lvl   core.Level
	typ   elem.Type
	op    elem.Op
}

func randomScenario(rng *rand.Rand) scenario {
	geos := []dram.Geometry{
		{Channels: 1, RanksPerChannel: 1, BanksPerChip: 2, MramPerBank: 1 << 14}, // 16 PEs
		{Channels: 1, RanksPerChannel: 2, BanksPerChip: 4, MramPerBank: 1 << 14}, // 64 PEs
		{Channels: 2, RanksPerChannel: 1, BanksPerChip: 4, MramPerBank: 1 << 14}, // 64 PEs
		{Channels: 3, RanksPerChannel: 1, BanksPerChip: 1, MramPerBank: 1 << 14}, // 24 PEs
	}
	geo := geos[rng.Intn(len(geos))]
	n := geo.NumPEs()

	// Random shape: factor n into 1-3 dimensions (power-of-two except
	// possibly last).
	var shape []int
	rem := n
	for len(shape) < 2 && rem > 1 {
		// Pick a power-of-two factor of rem.
		var opts []int
		for f := 2; f <= rem; f *= 2 {
			if rem%f == 0 {
				opts = append(opts, f)
			}
		}
		if len(opts) == 0 || rng.Intn(3) == 0 {
			break
		}
		f := opts[rng.Intn(len(opts))]
		shape = append(shape, f)
		rem /= f
	}
	shape = append(shape, rem) // last dim may be non-power-of-two
	if len(shape) == 1 && shape[0] == 1 {
		shape = []int{n}
	}

	// Random non-empty dims selection.
	dims := make([]byte, len(shape))
	any := false
	for i := range dims {
		if rng.Intn(2) == 0 {
			dims[i] = '0'
		} else {
			dims[i] = '1'
			any = true
		}
	}
	if !any {
		dims[rng.Intn(len(dims))] = '1'
	}

	return scenario{
		geo:   geo,
		shape: shape,
		dims:  string(dims),
		s:     8 * (1 + rng.Intn(4)),
		lvl:   core.Levels()[rng.Intn(4)],
		typ:   elem.Types()[rng.Intn(4)],
		op:    elem.Ops()[rng.Intn(6)],
	}
}

// checkScenario runs every primitive under the scenario and returns an
// error naming the first divergence.
func checkScenario(sc scenario, rng *rand.Rand) error {
	sys, err := dram.NewSystem(sc.geo)
	if err != nil {
		return err
	}
	hc, err := core.NewHypercube(sys, sc.shape)
	if err != nil {
		return err
	}
	mk := func() (*core.Comm, [][]byte, [][]int, int) {
		c := core.NewComm(hc, cost.DefaultParams())
		groups, err := hc.Groups(sc.dims)
		if err != nil {
			panic(err)
		}
		n := len(groups[0])
		m := n * sc.s
		in := make([][]byte, sc.geo.NumPEs())
		for pe := range in {
			in[pe] = make([]byte, m)
			rng.Read(in[pe])
			c.SetPEBuffer(pe, 0, in[pe])
		}
		return c, in, groups, m
	}
	sel := func(in [][]byte, grp []int) [][]byte {
		out := make([][]byte, len(grp))
		for i, pe := range grp {
			out[i] = in[pe]
		}
		return out
	}

	// AlltoAll.
	c, in, groups, m := mk()
	if _, err := c.AlltoAll(sc.dims, 0, 2*m, m, sc.lvl); err != nil {
		return fmt.Errorf("AlltoAll: %w", err)
	}
	for _, grp := range groups {
		want := core.RefAlltoAll(sel(in, grp), sc.s)
		for j, pe := range grp {
			if !bytes.Equal(c.GetPEBuffer(pe, 2*m, m), want[j]) {
				return fmt.Errorf("AlltoAll diverges at PE %d (%+v)", pe, sc)
			}
		}
	}
	// ReduceScatter.
	c, in, groups, m = mk()
	if _, err := c.ReduceScatter(sc.dims, 0, 2*m, m, sc.typ, sc.op, sc.lvl); err != nil {
		return fmt.Errorf("ReduceScatter: %w", err)
	}
	for _, grp := range groups {
		want := core.RefReduceScatter(sc.typ, sc.op, sel(in, grp), sc.s)
		for j, pe := range grp {
			if !bytes.Equal(c.GetPEBuffer(pe, 2*m, sc.s), want[j]) {
				return fmt.Errorf("ReduceScatter diverges at PE %d (%+v)", pe, sc)
			}
		}
	}
	// AllReduce.
	c, in, groups, m = mk()
	if _, err := c.AllReduce(sc.dims, 0, 2*m, m, sc.typ, sc.op, sc.lvl); err != nil {
		return fmt.Errorf("AllReduce: %w", err)
	}
	for _, grp := range groups {
		want := core.RefAllReduce(sc.typ, sc.op, sel(in, grp))
		for j, pe := range grp {
			if !bytes.Equal(c.GetPEBuffer(pe, 2*m, m), want[j]) {
				return fmt.Errorf("AllReduce diverges at PE %d (%+v)", pe, sc)
			}
		}
	}
	// AllGather (input s per PE).
	c, in, groups, _ = mk()
	n := len(groups[0])
	if _, err := c.AllGather(sc.dims, 0, m, sc.s, sc.lvl); err != nil {
		return fmt.Errorf("AllGather: %w", err)
	}
	for _, grp := range groups {
		heads := make([][]byte, len(grp))
		for i, pe := range grp {
			heads[i] = in[pe][:sc.s]
		}
		want := core.RefAllGather(heads)
		for j, pe := range grp {
			if !bytes.Equal(c.GetPEBuffer(pe, m, n*sc.s), want[j]) {
				return fmt.Errorf("AllGather diverges at PE %d (%+v)", pe, sc)
			}
		}
	}
	// Gather + Reduce round trips (host-rooted).
	c, in, groups, m = mk()
	got, _, err := c.Gather(sc.dims, 0, sc.s, sc.lvl)
	if err != nil {
		return fmt.Errorf("Gather: %w", err)
	}
	for g, grp := range groups {
		heads := make([][]byte, len(grp))
		for i, pe := range grp {
			heads[i] = in[pe][:sc.s]
		}
		if !bytes.Equal(got[g], core.RefGather(heads)) {
			return fmt.Errorf("Gather diverges at group %d (%+v)", g, sc)
		}
	}
	red, _, err := c.Reduce(sc.dims, 0, m, sc.typ, sc.op, sc.lvl)
	if err != nil {
		return fmt.Errorf("Reduce: %w", err)
	}
	for g, grp := range groups {
		if !bytes.Equal(red[g], core.RefReduce(sc.typ, sc.op, sel(in, grp))) {
			return fmt.Errorf("Reduce diverges at group %d (%+v)", g, sc)
		}
	}
	return nil
}

func main() {
	n := flag.Int("n", 100, "number of random scenarios")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *n; i++ {
		sc := randomScenario(rng)
		if err := checkScenario(sc, rng); err != nil {
			fmt.Fprintf(os.Stderr, "pidfuzz: scenario %d FAILED: %v\n", i, err)
			os.Exit(1)
		}
		if (i+1)%25 == 0 {
			fmt.Printf("%d/%d scenarios ok\n", i+1, *n)
		}
	}
	fmt.Printf("all %d scenarios match the reference model\n", *n)
}
