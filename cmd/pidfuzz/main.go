// Command pidfuzz performs randomized differential testing of the
// collective library: it generates random system geometries, hypercube
// shapes, dimension selections, payload sizes, element types, reduction
// operators and optimization levels (including Auto), runs every
// primitive, and compares the resulting bytes against the independent
// reference model; each scenario also compiles a fused
// AlltoAll→ReduceScatter sequence through the schedule-fusion optimizer
// and diffs it against an unfused execution. The scenario generator and
// checker live in internal/fuzz, which also runs a small deterministic
// slice of this loop as an in-process CI smoke test.
//
// Every fourth scenario additionally draws a cluster scenario: 1-4
// hosts joined by the cluster layer, every global collective diffed
// against the reference model on global ranks, with a cost-only twin
// cluster whose breakdowns must match the functional runs bit-for-bit.
// Interleaved with those, every fourth scenario draws an online-serving
// scenario: a random tenant mix with random arrivals, deadlines,
// overload budgets and mid-run churn driven through internal/serve,
// checked for deterministic replay, future leaks, hazard or arrival
// violations, and arena re-coalescing after teardown.
//
// This is the heavyweight companion of the package tests: run it for as
// many iterations as you like (it reports the first divergence found).
//
//	pidfuzz -n 200 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/fuzz"
)

func main() {
	n := flag.Int("n", 100, "number of random scenarios")
	seed := flag.Int64("seed", 1, "random seed")
	noAuto := flag.Bool("no-auto", false, "exclude the Auto pseudo-level from the draw pool")
	noCluster := flag.Bool("no-cluster", false, "skip the interleaved cluster scenarios")
	noServing := flag.Bool("no-serving", false, "skip the interleaved online-serving scenarios")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *n; i++ {
		sc := fuzz.Random(rng, !*noAuto)
		if err := sc.Check(rng); err != nil {
			fmt.Fprintf(os.Stderr, "pidfuzz: scenario %d FAILED: %v\n", i, err)
			os.Exit(1)
		}
		if !*noCluster && i%4 == 0 {
			csc := fuzz.RandomCluster(rng)
			if err := csc.Check(rng); err != nil {
				fmt.Fprintf(os.Stderr, "pidfuzz: cluster scenario %d FAILED: %v\n", i, err)
				os.Exit(1)
			}
		}
		if !*noServing && i%4 == 2 {
			ssc, err := fuzz.RandomServing(rng)
			if err == nil {
				err = ssc.Check()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "pidfuzz: serving scenario %d FAILED: %v\n", i, err)
				os.Exit(1)
			}
		}
		if (i+1)%25 == 0 {
			fmt.Printf("%d/%d scenarios ok\n", i+1, *n)
		}
	}
	fmt.Printf("all %d scenarios match the reference model\n", *n)
}
