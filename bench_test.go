package repro

// One testing.B benchmark per table and figure of the paper's evaluation
// (§ VIII). Each benchmark runs a miniature of the corresponding
// experiment (so `go test -bench=.` completes in minutes) and reports the
// simulated metric the figure plots — throughput in GB/s or speedup —
// via b.ReportMetric. cmd/pidbench regenerates the full-scale artifacts.

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/apps/bfs"
	"repro/internal/apps/cc"
	"repro/internal/apps/dlrm"
	"repro/internal/apps/gnn"
	"repro/internal/apps/mlp"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/dram"
	"repro/internal/elem"
	"repro/internal/multihost"
)

const benchSize = 16 << 10 // per-PE payload for primitive micro-benches

func reportGBs(b *testing.B, name string, v float64) {
	b.ReportMetric(v, name)
}

func runPrim(b *testing.B, prim core.Primitive, lvl core.Level, shape []int, dims string, size int) float64 {
	b.Helper()
	var thr float64
	for i := 0; i < b.N; i++ {
		var err error
		thr, _, err = bench.RunPrimitive(bench.PrimSpec{
			Shape: shape, Dims: dims, RecvPerPE: size, Prim: prim, Level: lvl,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return thr
}

func BenchmarkTable1Support(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.TableI()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Applicability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.TableII()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3Applications(b *testing.B) {
	e, err := bench.ByID("table3")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(bench.Options{W: io.Discard}); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 4: baseline application breakdown; reports the communication
// share of a comm-dominated app (CC).
func BenchmarkFig4Breakdown(b *testing.B) {
	g := data.Undirected(data.RMAT(2048, 8192, 12))
	var share float64
	for i := 0; i < b.N; i++ {
		_, prof, err := cc.RunPIM(cc.Config{Graph: g, PEs: 64}, core.Baseline)
		if err != nil {
			b.Fatal(err)
		}
		share = float64(prof.CommTotal()) / float64(prof.Total())
	}
	reportGBs(b, "comm-share", share)
}

// Figure 13: per-app breakdown Base vs Ours; reports MLP's RS speedup.
func BenchmarkFig13AppBreakdown(b *testing.B) {
	cfg := mlp.Config{Features: 2048, Layers: 3, PEs: 64, Batches: 2, Seed: 4}
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, base, err := mlp.RunPIM(cfg, core.Baseline)
		if err != nil {
			b.Fatal(err)
		}
		_, ours, err := mlp.RunPIM(cfg, core.CM)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(base.ByPrimitive[core.ReduceScatter]) / float64(ours.ByPrimitive[core.ReduceScatter])
	}
	reportGBs(b, "RS-speedup-x", ratio)
}

// Figure 14: primitive throughput Base vs PID-Comm on a 2-D hypercube.
func BenchmarkFig14PrimitiveThroughput(b *testing.B) {
	for _, prim := range core.Primitives() {
		b.Run(prim.LongName(), func(b *testing.B) {
			base := runPrim(b, prim, core.Baseline, []int{16, 16}, "10", benchSize)
			ours := runPrim(b, prim, core.CM, []int{16, 16}, "10", benchSize)
			reportGBs(b, "base-GB/s", base)
			reportGBs(b, "ours-GB/s", ours)
			reportGBs(b, "speedup-x", ours/base)
		})
	}
}

// Figure 15: application speedup over the conventional baseline (BFS at
// LJ-like scale, where frontier bitmaps amortize launch overheads).
func BenchmarkFig15AppSpeedup(b *testing.B) {
	g := data.RMAT(1<<16, 1<<18, 6)
	var sp float64
	for i := 0; i < b.N; i++ {
		_, base, err := bfs.RunPIM(bfs.Config{Graph: g, PEs: 64}, core.Baseline)
		if err != nil {
			b.Fatal(err)
		}
		_, ours, err := bfs.RunPIM(bfs.Config{Graph: g, PEs: 64}, core.CM)
		if err != nil {
			b.Fatal(err)
		}
		sp = float64(base.Total()) / float64(ours.Total())
	}
	reportGBs(b, "speedup-x", sp)
}

// Figure 16: the ablation — every optimization level of AlltoAll.
func BenchmarkFig16Ablation(b *testing.B) {
	for _, lvl := range core.Levels() {
		b.Run(lvl.String(), func(b *testing.B) {
			thr := runPrim(b, core.AlltoAll, lvl, []int{16, 16}, "10", benchSize)
			reportGBs(b, "GB/s", thr)
		})
	}
}

// Figure 17: breakdown categories of ReduceScatter, Base vs Ours;
// reports the host-memory share each design pays.
func BenchmarkFig17Breakdown(b *testing.B) {
	for _, lvl := range []core.Level{core.Baseline, core.IM} {
		b.Run(lvl.String(), func(b *testing.B) {
			var bd cost.Breakdown
			for i := 0; i < b.N; i++ {
				var err error
				_, bd, err = bench.RunPrimitive(bench.PrimSpec{
					Shape: []int{16, 16}, Dims: "10", RecvPerPE: benchSize,
					Prim: core.ReduceScatter, Level: lvl,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportGBs(b, "hostmem-share", float64(bd.Get(cost.HostMem))/float64(bd.Total()))
		})
	}
}

// Figure 18: data-size sweep for AlltoAll.
func BenchmarkFig18SizeSweep(b *testing.B) {
	for _, size := range []int{4 << 10, 16 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			thr := runPrim(b, core.AlltoAll, core.CM, []int{16, 16}, "10", size)
			reportGBs(b, "GB/s", thr)
		})
	}
}

// Figure 19: PE-count sweep for AllReduce.
func BenchmarkFig19PESweep(b *testing.B) {
	for _, pes := range []int{64, 256, 1024} {
		b.Run(fmt.Sprint(pes), func(b *testing.B) {
			thr := runPrim(b, core.AllReduce, core.CM, []int{pes}, "1", benchSize)
			reportGBs(b, "GB/s", thr)
		})
	}
}

// Figure 20: hypercube-shape sweep for AllGather on the x axis.
func BenchmarkFig20Shapes(b *testing.B) {
	for _, shape := range [][]int{{8, 64, 2}, {32, 16, 2}, {128, 4, 2}} {
		b.Run(fmt.Sprintf("%dx%dx%d", shape[0], shape[1], shape[2]), func(b *testing.B) {
			thr := runPrim(b, core.AllGather, core.CM, shape, "100", benchSize)
			reportGBs(b, "GB/s", thr)
		})
	}
}

// Figure 21: speedup over the CPU-only system (DLRM).
func BenchmarkFig21CPUComparison(b *testing.B) {
	cfg := dlrm.Config{Tables: 8, RowsPerTable: 1024, EmbDim: 16, Batch: 1024,
		X: 2, Y: 2, Z: 8, TopOut: 32, TopLayers: 2, Batches: 4, Seed: 5}
	var sp float64
	for i := 0; i < b.N; i++ {
		_, cpuT, err := dlrm.RunCPU(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_, prof, err := dlrm.RunPIM(cfg, core.CM)
		if err != nil {
			b.Fatal(err)
		}
		sp = float64(cpuT) / float64(prof.Total())
	}
	reportGBs(b, "speedup-x", sp)
}

// Figure 22: word-width sensitivity of the GNN.
func BenchmarkFig22WordWidth(b *testing.B) {
	in := data.GNNInput{Name: "bench", Graph: data.RMAT(1024, 4096, 20), F: 16}
	for _, et := range []elem.Type{elem.I8, elem.I16, elem.I32} {
		b.Run(et.String(), func(b *testing.B) {
			var comm cost.Seconds
			for i := 0; i < b.N; i++ {
				cfg := gnn.Config{Input: &in, Rows: 8, Cols: 8, Layers: 2, Elem: et, Seed: 3}
				_, prof, err := gnn.RunPIM(cfg, gnn.RSAR, core.IM)
				if err != nil {
					b.Fatal(err)
				}
				comm = prof.CommTotal()
			}
			reportGBs(b, "comm-ms", float64(comm)*1e3)
		})
	}
}

// Figure 23(a): AllReduce topology comparison.
func BenchmarkFig23aTopology(b *testing.B) {
	for _, topo := range []core.Topology{core.TopoHypercube, core.TopoRing, core.TopoTree} {
		b.Run(topo.String(), func(b *testing.B) {
			var total cost.Seconds
			for i := 0; i < b.N; i++ {
				sys, err := dram.NewSystem(dram.Geometry{Channels: 1, RanksPerChannel: 4, BanksPerChip: 8, MramPerBank: 1 << 17})
				if err != nil {
					b.Fatal(err)
				}
				hc, err := core.NewHypercube(sys, []int{16, 16})
				if err != nil {
					b.Fatal(err)
				}
				comm := core.NewComm(hc, cost.DefaultParams())
				m := 16 * 1024
				buf := make([]byte, m)
				for pe := 0; pe < 256; pe++ {
					comm.SetPEBuffer(pe, 0, buf)
				}
				bd, err := comm.AllReduceTopo(topo, "10", 0, 2*m, m, elem.I32, elem.Sum)
				if err != nil {
					b.Fatal(err)
				}
				total = bd.Total()
			}
			reportGBs(b, "sim-ms", float64(total)*1e3)
		})
	}
}

// Figure 23(b): multi-host AllReduce.
func BenchmarkFig23bMultiHost(b *testing.B) {
	geo := dram.Geometry{Channels: 1, RanksPerChannel: 1, BanksPerChip: 4, MramPerBank: 1 << 15}
	for _, hosts := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%dhosts", hosts), func(b *testing.B) {
			var netShare float64
			for i := 0; i < b.N; i++ {
				cl, err := multihost.New(hosts, geo, cost.DefaultParams())
				if err != nil {
					b.Fatal(err)
				}
				P := cl.PEsPerHost()
				m := P * 256
				buf := make([]byte, m)
				for h := 0; h < hosts; h++ {
					for p := 0; p < P; p++ {
						cl.Host(h).SetPEBuffer(p, 0, buf)
					}
				}
				bd, err := cl.AllReduce(0, 2*m, m, elem.I32, elem.Sum, core.CM)
				if err != nil {
					b.Fatal(err)
				}
				netShare = float64(bd.Get(cost.Network)) / float64(bd.Total())
			}
			reportGBs(b, "net-share", netShare)
		})
	}
}
