package repro

// The documentation gate: CI fails if any package loses its package-level
// documentation. Run directly via `make checkdocs`.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocs walks every package directory in the module and
// requires at least one non-test file carrying a package doc comment.
func TestPackageDocs(t *testing.T) {
	dirs := map[string][]string{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	fset := token.NewFileSet()
	var undocumented []string
	for dir, files := range dirs {
		documented := false
		for _, f := range files {
			af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Errorf("%s: %v", f, err)
				continue
			}
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			undocumented = append(undocumented, dir)
		}
	}

	if len(dirs) < 20 {
		t.Fatalf("doc gate only found %d packages — the walk is broken", len(dirs))
	}
	for _, dir := range undocumented {
		t.Errorf("package %s has no package-level documentation (add a doc comment or a doc.go)", dir)
	}
}
